//! Trace sinks: where probe events go.

use maeri_sim::histogram::Histogram;
use maeri_sim::Stats;

use crate::event::TraceEvent;

/// Consumer of [`TraceEvent`]s.
///
/// Simulation hot loops are generic over `S: TraceSink` and call
/// [`TraceSink::emit`] with a closure. `emit` checks the associated
/// [`TraceSink::ENABLED`] constant before calling the closure, so for
/// [`NullSink`] (where it is `false`) the branch, the event
/// construction, and the record call all monomorphize away — probed
/// code with a `NullSink` is the uninstrumented loop.
pub trait TraceSink {
    /// Compile-time enable switch. `false` turns every probe in a
    /// monomorphized call path into nothing.
    const ENABLED: bool = true;

    /// Consumes one event. Only called while [`TraceSink::ENABLED`].
    fn record(&mut self, event: TraceEvent);

    /// Emits the event built by `make` if the sink is enabled. Probe
    /// sites call this so a disabled sink never pays for event
    /// construction.
    #[inline]
    fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        if Self::ENABLED {
            self.record(make());
        }
    }
}

/// The no-op sink: telemetry compiled in but disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Counts events by [`TraceEvent::kind`]; the cheapest enabled sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    counts: Stats,
}

impl CountingSink {
    /// Creates an empty counter sink.
    #[must_use]
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Events of the given kind seen so far.
    #[must_use]
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind)
    }

    /// Total events across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, v)| v).sum()
    }

    /// The per-kind counters.
    #[must_use]
    pub fn counts(&self) -> &Stats {
        &self.counts
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, event: TraceEvent) {
        self.counts.incr(event.kind());
    }
}

/// The aggregating sink behind [`crate::FabricTelemetry`]: per-kind
/// counts plus the accumulators a per-run summary needs (issued words,
/// stall lane-cycles, wave count, VN completion latencies, ART
/// configuration usage, final cycle).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySink {
    counts: Stats,
    words_issued: u64,
    flit_drops: u64,
    dist_stall_lane_cycles: u64,
    collect_stall_lane_cycles: u64,
    waves_started: u64,
    mult_fires: u64,
    art_active_adders: u64,
    art_forward_links: u64,
    vn_latency: Histogram,
    end_cycle: u64,
}

impl TelemetrySink {
    /// Creates an empty aggregating sink.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySink::default()
    }

    /// Unique words injected at the distribution root.
    #[must_use]
    pub fn words_issued(&self) -> u64 {
        self.words_issued
    }

    /// Flits lost to faulty links.
    #[must_use]
    pub fn flit_drops(&self) -> u64 {
        self.flit_drops
    }

    /// Lane-cycles spent starved for inputs.
    #[must_use]
    pub fn dist_stall_lane_cycles(&self) -> u64 {
        self.dist_stall_lane_cycles
    }

    /// Lane-cycles spent blocked on collection back-pressure.
    #[must_use]
    pub fn collect_stall_lane_cycles(&self) -> u64 {
        self.collect_stall_lane_cycles
    }

    /// Reduction waves fired into the ART.
    #[must_use]
    pub fn waves_started(&self) -> u64 {
        self.waves_started
    }

    /// Individual multiplies observed (when switch-level probes ran).
    #[must_use]
    pub fn mult_fires(&self) -> u64 {
        self.mult_fires
    }

    /// Active adders of the last [`TraceEvent::ArtConfigured`].
    #[must_use]
    pub fn art_active_adders(&self) -> u64 {
        self.art_active_adders
    }

    /// Forwarding-link activations of the last
    /// [`TraceEvent::ArtConfigured`].
    #[must_use]
    pub fn art_forward_links(&self) -> u64 {
        self.art_forward_links
    }

    /// Per-wave ART completion latencies.
    #[must_use]
    pub fn vn_latency(&self) -> &Histogram {
        &self.vn_latency
    }

    /// The highest cycle stamp seen (normally the
    /// [`TraceEvent::RunEnd`] marker).
    #[must_use]
    pub fn end_cycle(&self) -> u64 {
        self.end_cycle
    }

    /// Per-kind event counters.
    #[must_use]
    pub fn counts(&self) -> &Stats {
        &self.counts
    }

    /// Total events across all kinds.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.counts.iter().map(|(_, v)| v).sum()
    }
}

impl TraceSink for TelemetrySink {
    fn record(&mut self, event: TraceEvent) {
        self.counts.incr(event.kind());
        if let Some(cycle) = event.cycle() {
            self.end_cycle = self.end_cycle.max(cycle);
        }
        match event {
            TraceEvent::DistIssue { words, .. } => self.words_issued += words,
            TraceEvent::FlitDropped { .. } => self.flit_drops += 1,
            TraceEvent::DistStall { .. } => self.dist_stall_lane_cycles += 1,
            TraceEvent::CollectStall { .. } => self.collect_stall_lane_cycles += 1,
            TraceEvent::VnReduceStart { .. } => self.waves_started += 1,
            TraceEvent::VnReduceComplete { latency, .. } => self.vn_latency.record(latency),
            TraceEvent::MultFire { .. } => self.mult_fires += 1,
            TraceEvent::ArtConfigured {
                active_adders,
                forward_links,
            } => {
                self.art_active_adders = active_adders;
                self.art_forward_links = forward_links;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed<S: TraceSink>(sink: &mut S) {
        sink.emit(|| TraceEvent::DistIssue { cycle: 1, words: 8 });
        sink.emit(|| TraceEvent::VnReduceStart { cycle: 1, lane: 0 });
        sink.emit(|| TraceEvent::VnReduceComplete {
            cycle: 7,
            lane: 0,
            latency: 6,
        });
        sink.emit(|| TraceEvent::DistStall { cycle: 2, lane: 1 });
        sink.emit(|| TraceEvent::ArtConfigured {
            active_adders: 60,
            forward_links: 2,
        });
        sink.emit(|| TraceEvent::RunEnd { cycle: 9 });
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) }
        // The closure must never run on a disabled sink.
        let mut sink = NullSink;
        sink.emit(|| unreachable!("NullSink must not build events"));
    }

    #[test]
    fn counting_sink_tallies_kinds() {
        let mut sink = CountingSink::new();
        feed(&mut sink);
        assert_eq!(sink.count("dist_issue"), 1);
        assert_eq!(sink.count("vn_reduce_start"), 1);
        assert_eq!(sink.count("never_seen"), 0);
        assert_eq!(sink.total(), 6);
        assert_eq!(sink.counts().len(), 6);
    }

    #[test]
    fn telemetry_sink_accumulates() {
        let mut sink = TelemetrySink::new();
        feed(&mut sink);
        assert_eq!(sink.words_issued(), 8);
        assert_eq!(sink.waves_started(), 1);
        assert_eq!(sink.dist_stall_lane_cycles(), 1);
        assert_eq!(sink.collect_stall_lane_cycles(), 0);
        assert_eq!(sink.art_active_adders(), 60);
        assert_eq!(sink.art_forward_links(), 2);
        assert_eq!(sink.vn_latency().len(), 1);
        assert_eq!(sink.vn_latency().max(), Some(6));
        assert_eq!(sink.end_cycle(), 9);
        assert_eq!(sink.total_events(), 6);
    }
}
