//! Minimal JSON emission, parsing, and validation.
//!
//! The build environment has no crates.io access, so there is no
//! `serde_json`; this module provides the pieces telemetry export and
//! the service wire protocol actually need: a deterministic writer
//! ([`JsonValue`]) whose object keys stay in insertion order, a strict
//! recursive-descent [`parse`] that builds a [`JsonValue`] back from
//! text (used by `maeri-serve` to decode protocol frames), and
//! [`validate`], used by tests and the CI smoke to prove that emitted
//! traces are well-formed JSON.

/// A JSON document fragment. Objects preserve insertion order so that
/// rendered output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, keys in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object to push fields into.
    #[must_use]
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Adds a field to an object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: JsonValue) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_owned(), value)),
            other => panic!("cannot add field to non-object {other:?}"),
        }
        self
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Looks up a field of an object by key (first match; emitted
    /// documents never repeat keys). Returns `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a signed /
    /// float value that is a non-negative whole number).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            JsonValue::Num(f) if f.is_finite() && *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => out.push_str(&n.to_string()),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Num(f) => {
                if f.is_finite() {
                    // Rust's float Display never emits NaN/inf here and
                    // always includes enough digits to round-trip.
                    let text = format!("{f}");
                    out.push_str(&text);
                    // "1" is a valid JSON number, so bare integers are
                    // fine as-is.
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Validates that `text` is one well-formed JSON document.
///
/// # Errors
///
/// Returns a description (with byte offset) of the first syntax error.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Parses one well-formed JSON document into a [`JsonValue`].
///
/// Numbers without a fraction or exponent become [`JsonValue::UInt`] /
/// [`JsonValue::Int`]; everything else numeric becomes
/// [`JsonValue::Num`]. Object keys keep document order (duplicates are
/// preserved; [`JsonValue::get`] returns the first).
///
/// # Errors
///
/// Returns a description (with byte offset) of the first syntax error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "expected a JSON value at byte {}, found {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        let mut items: Vec<JsonValue> = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(byte) = self.peek() {
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => {
                                        code = code * 16 + (c as char).to_digit(16).unwrap_or(0);
                                        self.pos += 1;
                                    }
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                            // Surrogates (paired or lone) are not
                            // emitted by the writer; decode them as the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control character at byte {}", self.pos)),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_owned())?;
                    let ch = text.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".to_owned())
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let digits = self.digits()?;
        if digits > 1 && self.bytes[self.pos - digits] == b'0' {
            return Err(format!("leading zero at byte {}", self.pos - digits));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number".to_owned())?;
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("malformed number at byte {start}: {e}"))
    }

    fn digits(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_validates_roundtrip() {
        let doc = JsonValue::object()
            .with("name", JsonValue::Str("vn \"0\"\n".to_owned()))
            .with("cycles", JsonValue::UInt(143))
            .with("delta", JsonValue::Int(-2))
            .with("busy", JsonValue::Num(0.75))
            .with("ok", JsonValue::Bool(true))
            .with("none", JsonValue::Null)
            .with(
                "levels",
                JsonValue::Array(vec![JsonValue::Num(1.0), JsonValue::Num(0.5)]),
            );
        let text = doc.render();
        validate(&text).unwrap();
        assert!(text.starts_with("{\"name\":\"vn \\\"0\\\"\\n\""));
        assert!(text.contains("\"cycles\":143"));
        assert!(text.contains("\"delta\":-2"));
        assert!(text.contains("\"none\":null"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Num(2.5).render(), "2.5");
    }

    #[test]
    fn validator_accepts_standard_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"a\\u00e9b\"",
            r#"{"a": [1, 2, {"b": null}], "c": "d"}"#,
            " { \"x\" : 0 } ",
        ] {
            assert!(validate(ok).is_ok(), "{ok} should validate");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "01",
            "1 2",
            "\"unterminated",
            "{'single': 1}",
            "nul",
            "[\"\\x\"]",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
        let fine = "[".repeat(64) + &"]".repeat(64);
        assert!(validate(&fine).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn with_on_non_object_panics() {
        let _ = JsonValue::Null.with("a", JsonValue::Null);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = JsonValue::object()
            .with("name", JsonValue::Str("vn \"0\"\n".to_owned()))
            .with("cycles", JsonValue::UInt(143))
            .with("delta", JsonValue::Int(-2))
            .with("busy", JsonValue::Num(0.75))
            .with("ok", JsonValue::Bool(true))
            .with("none", JsonValue::Null)
            .with(
                "levels",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Num(0.5)]),
            );
        let parsed = parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        // And rendering the parse is byte-stable.
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(parse("7").unwrap(), JsonValue::UInt(7));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("7.5").unwrap(), JsonValue::Num(7.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        // Too big for i64 still parses, as a float.
        assert!(matches!(
            parse("-99999999999999999999").unwrap(),
            JsonValue::Num(_)
        ));
    }

    #[test]
    fn parse_unescapes_strings() {
        assert_eq!(
            parse(r#""aéb\n\t\"""#).unwrap(),
            JsonValue::Str("a\u{e9}b\n\t\"".to_owned())
        );
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = parse(r#"{"op":"submit","id":42,"deep":{"x":[1,2]},"flag":false}"#).unwrap();
        assert_eq!(doc.get("op").and_then(JsonValue::as_str), Some("submit"));
        assert_eq!(doc.get("id").and_then(JsonValue::as_u64), Some(42));
        assert_eq!(doc.get("flag").and_then(JsonValue::as_bool), Some(false));
        let xs = doc
            .get("deep")
            .and_then(|d| d.get("x"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(JsonValue::UInt(3).as_f64(), Some(3.0));
    }
}
