//! The probe event vocabulary.

use serde::{Deserialize, Serialize};

/// One observation from a clocked fabric simulation.
///
/// Events are deliberately small `Copy` values: a probe site builds one
/// inside a closure handed to [`crate::TraceSink::emit`], so a disabled
/// sink never even constructs it. Cycle numbers are the simulation's
/// own 1-based clock; lane/switch indices identify virtual neurons and
/// multiplier switches within the run being traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TraceEvent {
    /// Words injected at the distribution-tree root this cycle
    /// (a multicast counts once — the simple switches replicate it).
    DistIssue {
        /// Simulation cycle.
        cycle: u64,
        /// Unique words injected.
        words: u64,
    },
    /// A distribution flit was lost on a faulty link and will be
    /// retransmitted; the injection slot is burned.
    FlitDropped {
        /// Simulation cycle.
        cycle: u64,
    },
    /// One closed-form delivery through the distribution tree
    /// (recorded by the bandwidth-counting [`Distributor`] model).
    ///
    /// [`Distributor`]: https://docs.rs/maeri
    DistDelivery {
        /// Distinct values delivered.
        unique_words: u64,
        /// Cycles the delivery cost.
        cycles: u64,
    },
    /// A packet moved into a tree level, occupying `links` links there
    /// (recorded by the packet-level NoC simulation).
    LinkHop {
        /// Simulation cycle.
        cycle: u64,
        /// Tree level entered (1 = just below the root).
        level: u32,
        /// Links of that level occupied by the move.
        links: u64,
    },
    /// A packet reached its last destination leaf.
    PacketDelivered {
        /// Simulation cycle.
        cycle: u64,
        /// Packet id.
        id: u32,
    },
    /// A lane (virtual neuron) sat idle this cycle waiting for inputs —
    /// distribution was the limiter.
    DistStall {
        /// Simulation cycle.
        cycle: u64,
        /// Stalled lane.
        lane: u32,
    },
    /// A lane had a ready wave but the ART entrance was blocked by
    /// collection back-pressure.
    CollectStall {
        /// Simulation cycle.
        cycle: u64,
        /// Blocked lane.
        lane: u32,
    },
    /// A lane fired a reduction wave into the ART pipeline.
    VnReduceStart {
        /// Simulation cycle.
        cycle: u64,
        /// Firing lane.
        lane: u32,
    },
    /// A reduction wave left the ART root; `latency` is the cycles from
    /// firing to collection (pipeline depth plus queueing).
    VnReduceComplete {
        /// Simulation cycle of collection.
        cycle: u64,
        /// Completing lane.
        lane: u32,
        /// Cycles from [`TraceEvent::VnReduceStart`] to collection.
        latency: u64,
    },
    /// A multiplier switch performed one multiply.
    MultFire {
        /// Simulation cycle.
        cycle: u64,
        /// Leaf index of the switch.
        switch_id: u32,
    },
    /// The ART was (re)configured for a run: how much of the adder
    /// fabric the mapping uses.
    ArtConfigured {
        /// Adder switches performing arithmetic.
        active_adders: u64,
        /// Same-level forwarding links activated by the configuration.
        forward_links: u64,
    },
    /// The traced run finished at `cycle` (frame marker).
    RunEnd {
        /// Final simulation cycle.
        cycle: u64,
    },
}

impl TraceEvent {
    /// A stable snake_case tag for counting and display.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::DistIssue { .. } => "dist_issue",
            TraceEvent::FlitDropped { .. } => "flit_dropped",
            TraceEvent::DistDelivery { .. } => "dist_delivery",
            TraceEvent::LinkHop { .. } => "link_hop",
            TraceEvent::PacketDelivered { .. } => "packet_delivered",
            TraceEvent::DistStall { .. } => "dist_stall",
            TraceEvent::CollectStall { .. } => "collect_stall",
            TraceEvent::VnReduceStart { .. } => "vn_reduce_start",
            TraceEvent::VnReduceComplete { .. } => "vn_reduce_complete",
            TraceEvent::MultFire { .. } => "mult_fire",
            TraceEvent::ArtConfigured { .. } => "art_configured",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// The simulation cycle the event is stamped with, when it has one
    /// (configuration and closed-form events are cycle-free).
    #[must_use]
    pub fn cycle(&self) -> Option<u64> {
        match *self {
            TraceEvent::DistIssue { cycle, .. }
            | TraceEvent::FlitDropped { cycle }
            | TraceEvent::LinkHop { cycle, .. }
            | TraceEvent::PacketDelivered { cycle, .. }
            | TraceEvent::DistStall { cycle, .. }
            | TraceEvent::CollectStall { cycle, .. }
            | TraceEvent::VnReduceStart { cycle, .. }
            | TraceEvent::VnReduceComplete { cycle, .. }
            | TraceEvent::MultFire { cycle, .. }
            | TraceEvent::RunEnd { cycle } => Some(cycle),
            TraceEvent::DistDelivery { .. } | TraceEvent::ArtConfigured { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let events = [
            TraceEvent::DistIssue { cycle: 1, words: 2 },
            TraceEvent::FlitDropped { cycle: 1 },
            TraceEvent::DistDelivery {
                unique_words: 4,
                cycles: 1,
            },
            TraceEvent::LinkHop {
                cycle: 1,
                level: 1,
                links: 2,
            },
            TraceEvent::PacketDelivered { cycle: 3, id: 0 },
            TraceEvent::DistStall { cycle: 1, lane: 0 },
            TraceEvent::CollectStall { cycle: 1, lane: 0 },
            TraceEvent::VnReduceStart { cycle: 1, lane: 0 },
            TraceEvent::VnReduceComplete {
                cycle: 7,
                lane: 0,
                latency: 6,
            },
            TraceEvent::MultFire {
                cycle: 1,
                switch_id: 5,
            },
            TraceEvent::ArtConfigured {
                active_adders: 60,
                forward_links: 3,
            },
            TraceEvent::RunEnd { cycle: 100 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len(), "duplicate event kind tag");
    }

    #[test]
    fn cycle_extraction() {
        assert_eq!(TraceEvent::RunEnd { cycle: 9 }.cycle(), Some(9));
        assert_eq!(
            TraceEvent::ArtConfigured {
                active_adders: 1,
                forward_links: 0
            }
            .cycle(),
            None
        );
        assert_eq!(
            TraceEvent::VnReduceComplete {
                cycle: 12,
                lane: 3,
                latency: 6
            }
            .cycle(),
            Some(12)
        );
    }
}
