//! SCNN-style fixed-cluster accelerator (Figures 13 and 14 baseline).
//!
//! The baseline in the paper's irregular-dataflow experiments: four
//! 4x4 PE clusters, each with an internal 16:1 adder tree, connected to
//! the SRAM by a shared bus. Its two rigidities are exactly what MAERI
//! removes:
//!
//! * **cluster granularity** — a neuron's reduction occupies *whole*
//!   clusters: a 27-MAC VGG neuron takes 2 clusters (32 MACs) and a
//!   13-MAC sparse neuron still takes a full 16-MAC cluster,
//! * **bus bandwidth** — input broadcast and partial-sum collection
//!   share one half-duplex bus, so when sparsity shrinks neurons and
//!   more of them finish per step, collection serializes.

use maeri::engine::RunStats;
use maeri_dnn::{ConvLayer, WeightMask};
use maeri_sim::util::ceil_div;
use maeri_sim::{Cycle, Result, SimError};
use serde::{Deserialize, Serialize};

/// A fixed-cluster accelerator.
///
/// # Example
///
/// ```
/// use maeri_baselines::FixedClusterArray;
/// use maeri_dnn::{ConvLayer, WeightMask};
///
/// let fc = FixedClusterArray::paper_baseline();
/// let layer = ConvLayer::new("c", 3, 8, 8, 8, 3, 3, 1, 1);
/// let run = fc.run_conv(&layer, &WeightMask::dense(&layer), 3)?;
/// // 27-weight neurons occupy 2 clusters: utilization <= 27/32.
/// assert!(run.utilization() <= 27.0 / 32.0 + 1e-9);
/// # Ok::<(), maeri_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedClusterArray {
    clusters: usize,
    cluster_size: usize,
    bus_bandwidth: usize,
}

impl FixedClusterArray {
    /// Creates an array of `clusters` clusters of `cluster_size` PEs
    /// each, sharing a bus of `bus_bandwidth` words/cycle.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(clusters: usize, cluster_size: usize, bus_bandwidth: usize) -> Self {
        assert!(
            clusters > 0 && cluster_size > 0,
            "cluster shape must be positive"
        );
        assert!(bus_bandwidth > 0, "bus bandwidth must be positive");
        FixedClusterArray {
            clusters,
            cluster_size,
            bus_bandwidth,
        }
    }

    /// The paper's baseline: four 4x4 clusters sharing a bus with the
    /// same 8-word SRAM bandwidth the MAERI configuration enjoys.
    #[must_use]
    pub fn paper_baseline() -> Self {
        FixedClusterArray::new(4, 16, 8)
    }

    /// Total PEs.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.clusters * self.cluster_size
    }

    /// Costs a (possibly sparse) CONV layer with `ct` channels per
    /// neuron slice — the same work decomposition the MAERI sparse
    /// mapper uses, for an apples-to-apples comparison.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unmappable`] for an invalid channel tile.
    pub fn run_conv(&self, layer: &ConvLayer, mask: &WeightMask, ct: usize) -> Result<RunStats> {
        if ct == 0 || ct > layer.in_channels {
            return Err(SimError::unmappable(format!(
                "channel tile {ct} invalid for {} channels",
                layer.in_channels
            )));
        }
        let rs = layer.kernel_h * layer.kernel_w;
        let segments = ceil_div(layer.in_channels as u64, ct as u64) as usize;
        // Neuron slices and their surviving weight counts, segment-major
        // so co-scheduled lanes share an input slice (matching the MAERI
        // sparse mapper's packing for a fair comparison).
        let mut slices: Vec<usize> = Vec::with_capacity(layer.out_channels * segments);
        for seg in 0..segments {
            for k in 0..layer.out_channels {
                let c_lo = seg * ct;
                let c_hi = ((seg + 1) * ct).min(layer.in_channels);
                let nz = (c_lo..c_hi)
                    .flat_map(|c| (0..rs).map(move |j| c * rs + j))
                    .filter(|&j| mask.is_kept(k, j))
                    .count();
                if nz > 0 {
                    slices.push(nz);
                }
            }
        }
        if slices.is_empty() {
            return Ok(RunStats::new(&layer.name, self.num_pes(), Cycle::ZERO, 0));
        }

        let (p, q) = (layer.out_h() as u64, layer.out_w() as u64);
        let r = layer.kernel_h as u64;
        let cols_new = (layer.stride as u64).min(layer.kernel_w as u64);
        let mut total_cycles = 0u64;
        let mut total_macs = 0u64;
        let mut reads = 0u64;
        let mut groups = 0u64;
        let mut idx = 0usize;
        while idx < slices.len() {
            // Fill clusters at whole-cluster granularity.
            let mut lanes: Vec<usize> = Vec::new();
            let mut clusters_used = 0usize;
            while idx < slices.len() {
                let need = ceil_div(slices[idx] as u64, self.cluster_size as u64) as usize;
                if clusters_used + need > self.clusters {
                    break;
                }
                clusters_used += need;
                lanes.push(slices[idx]);
                idx += 1;
            }
            if lanes.is_empty() {
                // A single slice larger than the whole array folds over
                // every cluster.
                let folds = ceil_div(
                    slices[idx] as u64,
                    (self.clusters * self.cluster_size) as u64,
                );
                lanes.push(slices[idx]);
                idx += 1;
                total_cycles += folds; // extra pass overhead
            }
            // Per output step: inputs broadcast over the bus while each
            // lane's partial sum returns over it — whichever serializes
            // longer bounds the step (collection is one word per cycle
            // per bus arbitration slot).
            let channels_active = (ct as u64).min(layer.in_channels as u64);
            let input_words = r * cols_new * channels_active;
            let step = ceil_div(input_words, self.bus_bandwidth as u64).max(lanes.len() as u64);
            total_cycles += p * q * step;
            let lane_weights: u64 = lanes.iter().map(|&v| v as u64).sum();
            total_macs += lane_weights * p * q;
            reads += lane_weights + p * q * input_words;
            groups += 1;
        }

        let mut run = RunStats::new(
            &layer.name,
            self.num_pes(),
            Cycle::new(total_cycles),
            total_macs,
        );
        run.sram_reads = reads;
        run.sram_writes = layer.output_count() as u64;
        run.extra.add("groups", groups);
        Ok(run)
    }

    /// Stage time of one fused layer given `share` whole clusters,
    /// using the shared pipeline model with this fabric's rigidity:
    /// one channel slice per cluster (idle PEs beyond the slice),
    /// multi-cluster slices, temporal folding when a slice outgrows
    /// the share, and a proportional bus share.
    fn fused_stage_cycles(&self, layer: &ConvLayer, share: usize) -> u64 {
        let rs = layer.kernel_h * layer.kernel_w;
        let clusters_per_slice = ceil_div(rs as u64, self.cluster_size as u64) as usize;
        let (lanes, pieces) = if clusters_per_slice <= share {
            ((share / clusters_per_slice).max(1), 1)
        } else {
            // Slice larger than the whole share: fold temporally.
            (
                1,
                ceil_div(clusters_per_slice as u64, share as u64) as usize,
            )
        };
        let bus_share = (self.bus_bandwidth as f64 * share as f64 / self.clusters as f64).max(1.0);
        maeri::mapper::cross_layer::pipeline_stage_cycles(layer, lanes, pieces, 1, bus_share)
            .as_u64()
    }

    /// Costs a fused multi-layer mapping: each layer gets whole
    /// clusters in proportion to MAC demand (at least one). This is the
    /// Figure 14 comparator: with only four rigid clusters, a fused
    /// chain cannot balance its stages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unmappable`] when more layers are fused than
    /// clusters exist.
    pub fn run_fused(&self, layers: &[ConvLayer]) -> Result<RunStats> {
        if layers.is_empty() {
            return Err(SimError::unmappable("cannot fuse an empty chain"));
        }
        if layers.len() > self.clusters {
            return Err(SimError::unmappable(format!(
                "{} fused layers exceed {} clusters",
                layers.len(),
                self.clusters
            )));
        }
        // Whole-cluster shares, granted to the current bottleneck stage
        // (the same allocation objective as MAERI's fused mapper; the
        // difference is the coarse cluster granularity).
        let mut shares: Vec<usize> = vec![1; layers.len()];
        let mut left = self.clusters - layers.len();
        while left > 0 {
            let i = (0..layers.len())
                .max_by_key(|&i| self.fused_stage_cycles(&layers[i], shares[i]))
                .expect("non-empty");
            shares[i] += 1;
            left -= 1;
        }
        // Stage time from the shared pipeline model, with this fabric's
        // rigidity: a layer maps one channel slice per cluster (the
        // paper's Map C observation: only 9 of a cluster's 16 PEs
        // busy), a slice wider than a cluster consumes several whole
        // clusters, and each stage sees only its bus share.
        let mut bottleneck = 0u64;
        for (layer, &share) in layers.iter().zip(&shares) {
            bottleneck = bottleneck.max(self.fused_stage_cycles(layer, share));
        }
        let macs: u64 = layers.iter().map(ConvLayer::macs).sum();
        let mut run = RunStats::new(
            &format!("cluster-fused[{}]", layers.len()),
            self.num_pes(),
            Cycle::new(bottleneck),
            macs,
        );
        run.sram_reads = layers
            .iter()
            .map(|l| l.weight_count() as u64 + l.input_count() as u64)
            .sum();
        run.sram_writes = layers.last().map_or(0, |l| l.output_count() as u64);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_sim::SimRng;

    fn layer() -> ConvLayer {
        ConvLayer::new("vgg_c8_small", 256, 7, 7, 32, 3, 3, 1, 1)
    }

    #[test]
    fn dense_vgg_neuron_wastes_cluster_fraction() {
        // 27 MACs round to 2 clusters (32 PEs): peak util 27/32.
        let fc = FixedClusterArray::paper_baseline();
        let l = layer();
        let run = fc.run_conv(&l, &WeightMask::dense(&l), 3).unwrap();
        assert!(run.utilization() <= 27.0 / 32.0 + 1e-9);
        assert_eq!(run.macs, l.macs());
    }

    #[test]
    fn sparse_shrinks_work_but_not_proportionally_cycles() {
        // The bus serializes collection: halving the MACs does not come
        // close to halving the cycles (Figure 13's flat baseline).
        let fc = FixedClusterArray::paper_baseline();
        let l = layer();
        let dense = fc.run_conv(&l, &WeightMask::dense(&l), 3).unwrap();
        let sparse = fc
            .run_conv(&l, &WeightMask::generate(&l, 0.5, &mut SimRng::seed(3)), 3)
            .unwrap();
        assert!(sparse.macs < dense.macs / 2 + l.output_count() as u64);
        let cycle_ratio = sparse.cycles.as_f64() / dense.cycles.as_f64();
        assert!(
            cycle_ratio > 0.6,
            "baseline should barely speed up, got {cycle_ratio}"
        );
    }

    #[test]
    fn oversized_slice_folds_over_all_clusters() {
        let l = ConvLayer::new("big", 128, 7, 7, 4, 5, 5, 1, 2);
        let fc = FixedClusterArray::paper_baseline();
        // ct = 128: slices of up to 3200 weights >> 64 PEs.
        let run = fc.run_conv(&l, &WeightMask::dense(&l), 128).unwrap();
        assert_eq!(run.macs, l.macs());
        assert!(run.cycles.as_u64() > 0);
    }

    #[test]
    fn fused_chain_bottlenecked_by_rigid_shares() {
        let chain = vec![
            ConvLayer::new("c3", 256, 13, 13, 384, 3, 3, 1, 1),
            ConvLayer::new("c4", 384, 13, 13, 384, 3, 3, 1, 1),
            ConvLayer::new("c5", 384, 13, 13, 256, 3, 3, 1, 1),
        ];
        let fc = FixedClusterArray::paper_baseline();
        let run = fc.run_fused(&chain).unwrap();
        assert!(run.cycles.as_u64() > 0);
        // Rigid 16-PE clusters with 9-PE slices cap utilization.
        assert!(run.utilization() < 9.0 / 16.0 + 1e-9);
    }

    #[test]
    fn too_many_fused_layers_rejected() {
        let fc = FixedClusterArray::paper_baseline();
        let chain: Vec<ConvLayer> = (0..5)
            .map(|i| ConvLayer::new(&format!("l{i}"), 8, 8, 8, 8, 3, 3, 1, 1))
            .collect();
        assert!(fc.run_fused(&chain).is_err());
    }

    #[test]
    fn empty_mask_is_free() {
        let l = layer();
        let fc = FixedClusterArray::paper_baseline();
        let run = fc
            .run_conv(&l, &WeightMask::generate(&l, 1.0, &mut SimRng::seed(0)), 3)
            .unwrap();
        assert_eq!(run.macs, 0);
        assert_eq!(run.cycles, Cycle::ZERO);
    }

    #[test]
    fn invalid_tile_rejected() {
        let l = layer();
        let fc = FixedClusterArray::paper_baseline();
        assert!(fc.run_conv(&l, &WeightMask::dense(&l), 0).is_err());
    }
}
