//! A uniform latency/energy cost entry point over the three baselines.
//!
//! Historically each comparator grew its own ad-hoc signature —
//! [`SystolicArray::run_conv`]/[`SystolicArray::run_fc`],
//! [`RowStationary::run_conv`], and
//! [`FixedClusterArray::run_conv`] with a weight mask and channel
//! tile. Fleet-level scheduling (`maeri-fleet`) needs to ask every
//! backend the same question — *what does this layer cost you?* — so
//! this module defines [`CostModel`]: one `cost(layer)` entry point
//! returning a [`LayerCost`] (cycles plus energy in nanojoules).
//!
//! The trait is a pure veneer: every implementation delegates to the
//! model's existing `run_*` function, so the numbers the paper reports
//! (Figures 12–14, 17) cannot drift — a unit test below pins the
//! delegation cycle-for-cycle, and the figure reports keep calling the
//! original signatures byte-identically.

use maeri::engine::RunStats;
use maeri_dnn::{Layer, WeightMask};
use maeri_ppa::EnergyModel;
use maeri_sim::{Result, SimError};

use crate::{FixedClusterArray, RowStationary, SystolicArray};

/// What one layer costs on one backend: total cycles plus modeled
/// energy. The energy applies the backend's [`EnergyModel`] (hop
/// profile included) to the run's MAC and SRAM-traffic counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Total execution cycles.
    pub cycles: u64,
    /// Modeled energy in nanojoules.
    pub energy_nj: f64,
}

impl LayerCost {
    /// Prices a finished run under `model`.
    #[must_use]
    pub fn of(run: &RunStats, model: &EnergyModel) -> Self {
        LayerCost {
            cycles: run.cycles.as_u64(),
            energy_nj: model.run_energy_nj(run),
        }
    }
}

/// The uniform cost interface every baseline accelerator exposes.
///
/// `run_layer` produces the raw [`RunStats`] (delegating to the
/// model's pre-existing entry points); `cost` prices it with the
/// model's energy profile. A layer kind a backend cannot execute is a
/// structured [`SimError::Unmappable`], never a panic — fleet
/// schedulers treat it as "this backend is not a candidate".
pub trait CostModel {
    /// The 28 nm per-access energy constants for this backend,
    /// including its NoC hop profile.
    fn energy_model(&self) -> EnergyModel;

    /// Executes `layer` on this backend.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unmappable`] for layer kinds the backend
    /// does not implement.
    fn run_layer(&self, layer: &Layer) -> Result<RunStats>;

    /// The uniform entry point: cycles and energy of `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unmappable`] for layer kinds the backend
    /// does not implement.
    fn cost(&self, layer: &Layer) -> Result<LayerCost> {
        let run = self.run_layer(layer)?;
        Ok(LayerCost::of(&run, &self.energy_model()))
    }
}

fn unsupported(backend: &str, layer: &Layer) -> SimError {
    SimError::unmappable(format!(
        "{backend} has no mapping for layer kind of {:?}",
        layer.name()
    ))
}

impl CostModel for SystolicArray {
    fn energy_model(&self) -> EnergyModel {
        EnergyModel::systolic_8x8()
    }

    fn run_layer(&self, layer: &Layer) -> Result<RunStats> {
        match layer {
            Layer::Conv(conv) => Ok(self.run_conv(conv)),
            Layer::Fc(fc) => Ok(self.run_fc(fc)),
            other => Err(unsupported("systolic array", other)),
        }
    }
}

impl CostModel for RowStationary {
    fn energy_model(&self) -> EnergyModel {
        // Same spatial-array hop profile as the systolic array: words
        // ripple PE to PE across an 8x8 grid.
        EnergyModel::systolic_8x8()
    }

    fn run_layer(&self, layer: &Layer) -> Result<RunStats> {
        match layer {
            Layer::Conv(conv) => Ok(self.run_conv(conv)),
            other => Err(unsupported("row-stationary array", other)),
        }
    }
}

/// The channel tile the cluster baseline prices dense layers at: the
/// MAERI sparse mapper's 3-channel slice (27-weight neurons for 3x3
/// kernels), clamped to the layer's channel count.
#[must_use]
pub fn cluster_dense_tile(in_channels: usize) -> usize {
    3.min(in_channels).max(1)
}

impl CostModel for FixedClusterArray {
    fn energy_model(&self) -> EnergyModel {
        // Shared half-duplex bus (one hop) plus the 16:1 intra-cluster
        // adder tree (four levels).
        EnergyModel {
            avg_hops: 5.0,
            ..EnergyModel::maeri_64()
        }
    }

    fn run_layer(&self, layer: &Layer) -> Result<RunStats> {
        match layer {
            Layer::Conv(conv) => self.run_conv(
                conv,
                &WeightMask::dense(conv),
                cluster_dense_tile(conv.in_channels),
            ),
            other => Err(unsupported("fixed-cluster array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_dnn::{zoo, ConvLayer, FcLayer, PoolLayer};

    fn conv() -> ConvLayer {
        ConvLayer::new("c", 16, 14, 14, 32, 3, 3, 1, 1)
    }

    #[test]
    fn systolic_cost_delegates_to_run_conv_and_run_fc() {
        // The trait must report exactly what the ad-hoc signatures
        // report — this is the pin that keeps the figure reports
        // byte-identical across the refactor.
        let sa = SystolicArray::new(8, 8, 8);
        let layer = conv();
        let direct = sa.run_conv(&layer);
        let uniform = sa.cost(&Layer::Conv(layer)).unwrap();
        assert_eq!(uniform.cycles, direct.cycles.as_u64());
        assert_eq!(
            uniform.energy_nj,
            EnergyModel::systolic_8x8().run_energy_nj(&direct)
        );

        let fc = FcLayer::new("fc", 256, 64);
        let direct_fc = sa.run_fc(&fc);
        let uniform_fc = sa.cost(&Layer::Fc(fc)).unwrap();
        assert_eq!(uniform_fc.cycles, direct_fc.cycles.as_u64());
    }

    #[test]
    fn figure17_numbers_survive_the_uniform_entry_point() {
        let free = SystolicArray::unconstrained(8, 8);
        let cost = free.cost(&Layer::Conv(zoo::fig17_example())).unwrap();
        assert_eq!(cost.cycles, 156, "the paper's by-hand count");
        assert!(cost.energy_nj > 0.0);
    }

    #[test]
    fn row_stationary_cost_delegates_and_rejects_fc() {
        let rs = RowStationary::new(8, 8, 8);
        let layer = conv();
        let direct = rs.run_conv(&layer);
        let uniform = rs.cost(&Layer::Conv(layer)).unwrap();
        assert_eq!(uniform.cycles, direct.cycles.as_u64());
        assert!(rs.cost(&Layer::Fc(FcLayer::new("fc", 8, 8))).is_err());
    }

    #[test]
    fn cluster_cost_matches_dense_mask_run() {
        let fc = FixedClusterArray::paper_baseline();
        let layer = conv();
        let direct = fc.run_conv(&layer, &WeightMask::dense(&layer), 3).unwrap();
        let uniform = fc.cost(&Layer::Conv(layer)).unwrap();
        assert_eq!(uniform.cycles, direct.cycles.as_u64());
    }

    #[test]
    fn cluster_tile_clamps_to_thin_layers() {
        assert_eq!(cluster_dense_tile(1), 1);
        assert_eq!(cluster_dense_tile(2), 2);
        assert_eq!(cluster_dense_tile(256), 3);
        // A 2-channel layer must still be mappable through the trait.
        let thin = ConvLayer::new("thin", 2, 8, 8, 4, 3, 3, 1, 1);
        let cost = FixedClusterArray::paper_baseline()
            .cost(&Layer::Conv(thin))
            .unwrap();
        assert!(cost.cycles > 0);
    }

    #[test]
    fn unsupported_kinds_are_structured_errors() {
        let pool = Layer::Pool(PoolLayer::new("p", 8, 8, 8, 2, 2));
        assert!(SystolicArray::new(8, 8, 8).cost(&pool).is_err());
        assert!(RowStationary::new(8, 8, 8).cost(&pool).is_err());
        assert!(FixedClusterArray::paper_baseline().cost(&pool).is_err());
    }

    #[test]
    fn energy_orders_match_the_paper_story() {
        // MAERI's energy pitch is reduced SRAM re-streaming; the
        // row-stationary array reuses rows internally, so at the same
        // geometry its energy must undercut the systolic array's.
        let layer = Layer::Conv(conv());
        let sa = SystolicArray::new(8, 8, 8).cost(&layer).unwrap();
        let rs = RowStationary::new(8, 8, 8).cost(&layer).unwrap();
        assert!(rs.energy_nj < sa.energy_nj);
    }
}
