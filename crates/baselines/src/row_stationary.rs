//! Eyeriss-style row-stationary spatial array (Figure 12 comparator).
//!
//! Row-stationary mapping (Chen et al., ISCA 2016): each PE performs a
//! 1-D convolution of one filter row against one input row; a vertical
//! group of `R` PEs accumulates one output row's partial sums. On an
//! `H x W` PE array:
//!
//! * `strips = floor(H / R)` filter-row groups fit vertically (when
//!   `R > H` the group folds `ceil(R / H)` ways),
//! * the `W` columns process `W` different output rows in parallel,
//! * filters and channels iterate temporally as *passes*; each pass
//!   computes `Q` outputs per column at `S` MACs each, costing
//!   `Q*S + R + W` cycles (compute plus fill/drain), stalled when the
//!   pass's input-row traffic exceeds the array's SRAM bandwidth.
//!
//! The rigidity the MAERI paper targets is visible here: with `R = 3`
//! on an 8-row array, only 6 of 8 PE rows can ever be busy.

use maeri::engine::RunStats;
use maeri_dnn::ConvLayer;
use maeri_sim::util::ceil_div;
use maeri_sim::Cycle;
use serde::{Deserialize, Serialize};

/// An Eyeriss-style row-stationary accelerator.
///
/// # Example
///
/// ```
/// use maeri_baselines::RowStationary;
/// use maeri_dnn::ConvLayer;
///
/// let rs = RowStationary::new(8, 8, 8);
/// let layer = ConvLayer::new("c", 3, 16, 16, 8, 3, 3, 1, 1);
/// let run = rs.run_conv(&layer);
/// // 3-row filters leave 2 of 8 PE rows idle: utilization < 75%.
/// assert!(run.utilization() <= 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RowStationary {
    pe_rows: usize,
    pe_cols: usize,
    sram_bandwidth: usize,
}

impl RowStationary {
    /// Creates an `pe_rows x pe_cols` array with the given SRAM
    /// bandwidth (words/cycle).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(pe_rows: usize, pe_cols: usize, sram_bandwidth: usize) -> Self {
        assert!(
            pe_rows > 0 && pe_cols > 0,
            "array dimensions must be positive"
        );
        assert!(sram_bandwidth > 0, "sram bandwidth must be positive");
        RowStationary {
            pe_rows,
            pe_cols,
            sram_bandwidth,
        }
    }

    /// Number of processing elements.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Costs a CONV layer.
    #[must_use]
    pub fn run_conv(&self, layer: &ConvLayer) -> RunStats {
        let r = layer.kernel_h;
        let (strips, fold_r) = if r <= self.pe_rows {
            ((self.pe_rows / r).max(1), 1u64)
        } else {
            (1, ceil_div(r as u64, self.pe_rows as u64))
        };
        let q = layer.out_w() as u64;
        let s = layer.kernel_w as u64;
        let out_cols = (layer.out_h() as u64).min(self.pe_cols as u64);
        // Work: every (filter, channel, fold, output-row group) is one
        // column-task; `strips` of them run concurrently.
        let row_batches = ceil_div(layer.out_h() as u64, self.pe_cols as u64);
        let units = layer.out_channels as u64 * layer.in_channels as u64 * fold_r * row_batches;
        let passes = ceil_div(units, strips as u64);

        // Per pass: compute plus array fill/drain.
        let compute = q * s + (self.pe_rows + self.pe_cols) as u64;
        // Input rows entering the array per pass (row-stationary reuses
        // each input row diagonally across the columns it feeds).
        let in_rows = out_cols * layer.stride as u64
            + (r as u64)
                .min(self.pe_rows as u64)
                .saturating_sub(layer.stride as u64);
        let input_words = in_rows * layer.in_w as u64 * strips as u64;
        let weight_words = (strips * r.min(self.pe_rows)) as u64 * s;
        let bandwidth_cycles = ceil_div(input_words + weight_words, self.sram_bandwidth as u64);
        let pass_cycles = compute.max(bandwidth_cycles);
        let cycles = passes * pass_cycles;

        let mut run = RunStats::new(
            &layer.name,
            self.num_pes(),
            Cycle::new(cycles),
            layer.macs(),
        );
        run.sram_reads = passes * (input_words + weight_words);
        run.sram_writes = layer.output_count() as u64;
        run.extra.add("passes", passes);
        run.extra.add("strips", strips as u64);
        run.extra.add("fold_r", fold_r);
        run
    }

    /// Peak spatial utilization for a filter height: the fraction of PE
    /// rows that can ever be occupied.
    #[must_use]
    pub fn spatial_ceiling(&self, kernel_h: usize) -> f64 {
        if kernel_h >= self.pe_rows {
            1.0
        } else {
            ((self.pe_rows / kernel_h) * kernel_h) as f64 / self.pe_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> RowStationary {
        RowStationary::new(8, 8, 8)
    }

    #[test]
    fn spatial_ceiling_examples() {
        let a = rs();
        assert!((a.spatial_ceiling(3) - 0.75).abs() < 1e-12); // 2 strips of 3
        assert!((a.spatial_ceiling(4) - 1.0).abs() < 1e-12);
        assert!((a.spatial_ceiling(5) - 0.625).abs() < 1e-12); // 1 strip of 5
        assert!((a.spatial_ceiling(11) - 1.0).abs() < 1e-12); // folded
    }

    #[test]
    fn utilization_bounded_by_spatial_ceiling() {
        let layer = ConvLayer::new("c", 64, 28, 28, 64, 3, 3, 1, 1);
        let run = rs().run_conv(&layer);
        assert!(run.utilization() <= rs().spatial_ceiling(3) + 1e-9);
        assert!(run.utilization() > 0.2);
    }

    #[test]
    fn five_by_five_filters_hurt_more_than_three() {
        // AlexNet C2's 5x5 maps worse than VGG's 3x3 (1 strip vs 2).
        let c3 = ConvLayer::new("k3", 32, 27, 27, 32, 3, 3, 1, 1);
        let c5 = ConvLayer::new("k5", 32, 27, 27, 32, 5, 5, 1, 2);
        let u3 = rs().run_conv(&c3).utilization();
        let u5 = rs().run_conv(&c5).utilization();
        assert!(u3 > u5, "3x3 {u3} should beat 5x5 {u5}");
    }

    #[test]
    fn oversized_filters_fold() {
        let c11 = ConvLayer::new("k11", 3, 224, 224, 96, 11, 11, 4, 2);
        let run = rs().run_conv(&c11);
        assert_eq!(run.extra.get("fold_r"), 2);
        assert!(run.cycles.as_u64() > 0);
        assert!(run.utilization() <= 1.0);
    }

    #[test]
    fn row_stationary_reads_less_than_systolic() {
        // The whole point of row stationary: input rows are reused
        // inside the array instead of re-streamed per window.
        let layer = ConvLayer::new("c", 16, 28, 28, 32, 3, 3, 1, 1);
        let rs_reads = rs().run_conv(&layer).sram_reads;
        let sa_reads = crate::SystolicArray::unconstrained(8, 8)
            .run_conv(&layer)
            .sram_reads;
        assert!(rs_reads < sa_reads, "rs {rs_reads} vs sa {sa_reads}");
    }

    #[test]
    fn bandwidth_limits_passes() {
        let layer = ConvLayer::new("c", 8, 56, 56, 8, 3, 3, 1, 1);
        let fast = RowStationary::new(8, 8, 32).run_conv(&layer);
        let slow = RowStationary::new(8, 8, 2).run_conv(&layer);
        assert!(slow.cycles > fast.cycles);
    }
}
