//! Baseline accelerators the MAERI paper compares against.
//!
//! Three comparators, each a documented cycle/traffic model at the same
//! abstraction level as the MAERI mappers:
//!
//! * [`systolic::SystolicArray`] — a TPU-style weight-stationary
//!   systolic array (Figures 12 and 17),
//! * [`row_stationary::RowStationary`] — an Eyeriss-style row-stationary
//!   spatial array (Figure 12),
//! * [`cluster::FixedClusterArray`] — an SCNN-style accelerator built
//!   from fixed 4x4 PE clusters with internal adder trees on a shared
//!   bus (Figures 13 and 14).
//!
//! All three reuse [`maeri::engine::RunStats`] so results are directly
//! comparable with the MAERI mappers, and all three answer the uniform
//! [`cost::CostModel`] interface (`cost(layer) -> {cycles, energy}`)
//! the fleet scheduler consumes.
//!
//! # Example
//!
//! ```
//! use maeri_baselines::systolic::SystolicArray;
//! use maeri_dnn::zoo;
//!
//! // The paper's Figure 17 walk-through: 156 cycles on an 8x8 array
//! // (the paper assumes the SRAM sustains all 16 streams).
//! let sa = SystolicArray::unconstrained(8, 8);
//! let run = sa.run_conv(&zoo::fig17_example());
//! assert_eq!(run.cycles.as_u64(), 156);
//! assert_eq!(run.sram_reads, 1323);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod row_stationary;
pub mod systolic;

pub use cluster::FixedClusterArray;
pub use cost::{CostModel, LayerCost};
pub use row_stationary::RowStationary;
pub use systolic::SystolicArray;
