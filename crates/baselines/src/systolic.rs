//! Weight-stationary systolic array (TPU-style), per Section 6.3.
//!
//! The paper's model (Figure 17): filters map to columns, sliding
//! windows map to rows. One *iteration* streams `T = R*S*C` weight and
//! input elements through the array, computing `rows x cols`
//! (window, filter) pairs; it costs `T + rows + cols` cycles (stream
//! plus injection skew plus drain). A trailing partial iteration with
//! `m < rows` windows costs `T + m - 1`.
//!
//! Because the array cannot reuse data internally, every active row
//! streams `T` input words and every column streams `T` weight words
//! from SRAM each iteration — the 1323-read count of the worked
//! example. The SRAM can provide `sram_bandwidth` words per cycle; when
//! an iteration demands more (`rows + cols` streams), the array stalls
//! proportionally.

use maeri::engine::RunStats;
use maeri_dnn::{ConvLayer, FcLayer};
use maeri_sim::util::ceil_div;
use maeri_sim::Cycle;
use serde::{Deserialize, Serialize};

/// A weight-stationary systolic array.
///
/// # Example
///
/// ```
/// use maeri_baselines::SystolicArray;
/// use maeri_dnn::ConvLayer;
///
/// let sa = SystolicArray::new(8, 8, 8);
/// let layer = ConvLayer::new("c", 3, 8, 8, 16, 3, 3, 1, 1);
/// let run = sa.run_conv(&layer);
/// assert_eq!(run.macs, layer.macs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    sram_bandwidth: usize,
}

impl SystolicArray {
    /// Creates a `rows x cols` array fed by an SRAM that supplies
    /// `sram_bandwidth` words per cycle.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize, sram_bandwidth: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(sram_bandwidth > 0, "sram bandwidth must be positive");
        SystolicArray {
            rows,
            cols,
            sram_bandwidth,
        }
    }

    /// An unconstrained-bandwidth array, matching the paper's by-hand
    /// Figure 17 arithmetic exactly.
    #[must_use]
    pub fn unconstrained(rows: usize, cols: usize) -> Self {
        // Demand never exceeds rows + cols streams.
        SystolicArray::new(rows, cols, rows + cols)
    }

    /// Number of processing elements.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Costs a CONV layer.
    #[must_use]
    pub fn run_conv(&self, layer: &ConvLayer) -> RunStats {
        let t = layer.filter_volume() as u64;
        let windows = (layer.out_h() * layer.out_w()) as u64;
        let filter_batches = ceil_div(layer.out_channels as u64, self.cols as u64);
        // Injection bandwidth: full iterations stream `rows` input
        // vectors + `cols` weight vectors concurrently.
        let stall = ((self.rows + self.cols) as f64 / self.sram_bandwidth as f64).max(1.0);

        let full = windows / self.rows as u64;
        let rem = windows % self.rows as u64;
        let mut cycles_per_batch =
            full as f64 * ((t as f64) * stall + (self.rows + self.cols) as f64);
        let mut reads_per_batch = full * (self.rows + self.cols) as u64 * t;
        if rem > 0 {
            // Partial iteration: weights stay resident from the last
            // full pass; only `rem` input streams flow.
            let part_stall =
                ((rem as usize + self.cols) as f64 / self.sram_bandwidth as f64).max(1.0);
            cycles_per_batch += (t as f64) * part_stall.min(stall) + (rem - 1) as f64;
            reads_per_batch += rem * t;
        }
        let total_cycles = (filter_batches as f64 * cycles_per_batch).ceil() as u64;
        let mut run = RunStats::new(
            &layer.name,
            self.num_pes(),
            Cycle::new(total_cycles),
            layer.macs(),
        );
        run.sram_reads = filter_batches * reads_per_batch;
        run.sram_writes = layer.output_count() as u64;
        run.extra.add("filter_batches", filter_batches);
        run.extra
            .add("window_iterations", full + u64::from(rem > 0));
        run
    }

    /// Costs an FC layer: output neurons map to columns, the single
    /// input vector streams through one row (no window parallelism).
    #[must_use]
    pub fn run_fc(&self, layer: &FcLayer) -> RunStats {
        let t = layer.inputs as u64;
        let batches = ceil_div(layer.outputs as u64, self.cols as u64);
        let stall = ((1 + self.cols) as f64 / self.sram_bandwidth as f64).max(1.0);
        let per_batch = t as f64 * stall + (self.rows + self.cols) as f64;
        let cycles = (batches as f64 * per_batch).ceil() as u64;
        let mut run = RunStats::new(
            &layer.name,
            self.num_pes(),
            Cycle::new(cycles),
            layer.macs(),
        );
        run.sram_reads = batches * (1 + self.cols as u64) * t;
        run.sram_writes = layer.outputs as u64;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_dnn::zoo;

    #[test]
    fn figure17_walkthrough_156_cycles_1323_reads() {
        let sa = SystolicArray::new(8, 8, 8);
        // Bandwidth 8 < 16 streams would stall; the paper's by-hand
        // numbers assume full streaming, so check the unconstrained
        // array reproduces them.
        let free = SystolicArray::unconstrained(8, 8);
        let run = free.run_conv(&zoo::fig17_example());
        assert_eq!(run.cycles.as_u64(), 156);
        assert_eq!(run.sram_reads, 1323);
        // The default-bandwidth variant is strictly slower.
        let constrained = sa.run_conv(&zoo::fig17_example());
        assert!(constrained.cycles.as_u64() >= 156);
        assert_eq!(constrained.sram_reads, 1323);
    }

    #[test]
    fn bandwidth_stall_scales_cycles() {
        let layer = ConvLayer::new("c", 16, 14, 14, 32, 3, 3, 1, 1);
        let fast = SystolicArray::new(8, 8, 16).run_conv(&layer);
        let slow = SystolicArray::new(8, 8, 4).run_conv(&layer);
        assert!(slow.cycles.as_u64() > 2 * fast.cycles.as_u64());
        // Reads are bandwidth-independent (same data moves).
        assert_eq!(fast.sram_reads, slow.sram_reads);
    }

    #[test]
    fn no_internal_reuse_means_reads_scale_with_streams() {
        // Doubling the filter count doubles the filter batches and so
        // re-streams the inputs.
        let small = ConvLayer::new("a", 3, 8, 8, 8, 3, 3, 1, 1);
        let big = ConvLayer::new("b", 3, 8, 8, 16, 3, 3, 1, 1);
        let sa = SystolicArray::unconstrained(8, 8);
        let reads_small = sa.run_conv(&small).sram_reads;
        let reads_big = sa.run_conv(&big).sram_reads;
        assert_eq!(reads_big, 2 * reads_small);
    }

    #[test]
    fn utilization_degrades_with_tiny_layers() {
        // A layer with fewer windows than rows leaves PEs idle.
        let tiny = ConvLayer::new("tiny", 3, 4, 4, 2, 3, 3, 1, 0);
        let sa = SystolicArray::unconstrained(8, 8);
        let run = sa.run_conv(&tiny);
        assert!(run.utilization() < 0.3, "util {}", run.utilization());
    }

    #[test]
    fn fc_uses_one_row() {
        let layer = FcLayer::new("fc", 256, 64);
        let sa = SystolicArray::unconstrained(8, 8);
        let run = sa.run_fc(&layer);
        assert_eq!(run.macs, layer.macs());
        // 8 batches of 256-deep streams.
        assert!(run.cycles.as_u64() >= 8 * 256);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_rows_panics() {
        let _ = SystolicArray::new(0, 8, 8);
    }
}
