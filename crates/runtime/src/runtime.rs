//! The runtime facade: batch submission, caching, ordered assembly.

use std::collections::BTreeMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use maeri::{MaeriConfig, VnPolicy};
use maeri_dnn::zoo::Model;
use maeri_dnn::Layer;

use crate::cache::ResultCache;
use crate::job::{JobKey, SimJob};
use crate::metrics::{MetricsSnapshot, PhaseStats, RuntimeMetrics};
use crate::output::{JobResult, SimOutput};
use crate::pool::WorkerPool;
use crate::supervise::{AttemptRecord, RetryPolicy};

/// Everything the serving layer needs to attribute one dispatch after
/// the fact: whether the cache answered, and — for real executions —
/// the timing and classification of every supervised attempt (see
/// [`AttemptRecord`]). Produced by
/// [`Runtime::run_one_traced_with_deadline`]; the untraced entry
/// points never build one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchTrace {
    /// The cache answered; no attempt ran.
    pub cache_hit: bool,
    /// Per-attempt records in execution order, offsets measured from
    /// dispatch start. Empty for cache hits.
    pub attempts: Vec<AttemptRecord>,
}

/// Environment variable overriding the global runtime's worker count.
pub const WORKERS_ENV: &str = "MAERI_RUNTIME_WORKERS";

/// The batch-simulation runtime: a worker pool, a result cache, and
/// metrics, behind a deterministic submission API.
///
/// # Determinism
///
/// [`Runtime::run_batch`] returns one result per job, **ordered by job
/// index** — never by completion order. Jobs are pure functions of
/// their [`SimJob`] description, so any worker count (including served
/// cache hits) produces byte-identical results.
pub struct Runtime {
    pool: WorkerPool,
    cache: ResultCache,
    metrics: Arc<RuntimeMetrics>,
    policy: RetryPolicy,
}

impl Runtime {
    /// Creates a runtime with `workers` worker threads (minimum 1), a
    /// default job-queue depth of four tasks per worker, and the
    /// default (single-attempt, no-watchdog) [`RetryPolicy`].
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self::with_queue_depth(workers, workers.max(1) * 4)
    }

    /// Creates a runtime with an explicit bounded queue depth:
    /// submission blocks once `queue_depth` tasks are waiting.
    #[must_use]
    pub fn with_queue_depth(workers: usize, queue_depth: usize) -> Self {
        Self::with_queue_depth_and_policy(workers, queue_depth, RetryPolicy::default())
    }

    /// Creates a runtime whose workers supervise every job under
    /// `policy`: bounded retries for transient failures and an optional
    /// per-attempt timeout watchdog (see [`RetryPolicy`]).
    #[must_use]
    pub fn with_policy(workers: usize, policy: RetryPolicy) -> Self {
        Self::with_queue_depth_and_policy(workers, workers.max(1) * 4, policy)
    }

    fn with_queue_depth_and_policy(
        workers: usize,
        queue_depth: usize,
        policy: RetryPolicy,
    ) -> Self {
        let metrics = Arc::new(RuntimeMetrics::new());
        Runtime {
            pool: WorkerPool::new(workers, queue_depth, &metrics, policy),
            cache: ResultCache::new(),
            metrics,
            policy,
        }
    }

    /// The supervision policy every job runs under.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The process-wide shared runtime. Sized from the
    /// [`WORKERS_ENV`] environment variable when set (parseable and
    /// nonzero), otherwise from `std::thread::available_parallelism`.
    ///
    /// Sharing one runtime is what lets separate reports hit each
    /// other's cached results — e.g. the headline summary reuses the
    /// figure sweeps it cites.
    #[must_use]
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| Runtime::new(default_workers()))
    }

    /// Number of worker threads.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.pool.num_workers()
    }

    /// A point-in-time copy of the runtime's counters and phase log.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The runtime's result cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// A point-in-time copy of the cache's hit/miss counters — the
    /// public aggregation surface for layers above the runtime (the
    /// serve layer's hit-rate metric reads this, not the internals).
    #[must_use]
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Runs one job (through the cache, but on the calling thread).
    pub fn run_one(&self, job: &SimJob) -> JobResult {
        self.run_one_with_deadline(job, None)
    }

    /// Runs one job under a per-request deadline: the runtime's
    /// [`RetryPolicy`] is applied as usual, but each attempt's watchdog
    /// budget is clamped to `deadline` (a policy without a watchdog
    /// gains one for this job only). Past the deadline the attempt is
    /// abandoned and reported as [`crate::JobError::TimedOut`] — a
    /// transient error, so it is never cached. `None` behaves exactly
    /// like [`Runtime::run_one`].
    pub fn run_one_with_deadline(
        &self,
        job: &SimJob,
        deadline: Option<std::time::Duration>,
    ) -> JobResult {
        self.run_one_inner(job, deadline, &mut None).0
    }

    /// [`Runtime::run_one_with_deadline`], additionally returning a
    /// [`DispatchTrace`] with per-attempt timing and classification.
    /// The result (and every counter side effect) is identical to the
    /// untraced call; only the trace is extra.
    pub fn run_one_traced_with_deadline(
        &self,
        job: &SimJob,
        deadline: Option<std::time::Duration>,
    ) -> (JobResult, DispatchTrace) {
        let mut attempts = Some(Vec::new());
        let (result, cache_hit) = self.run_one_inner(job, deadline, &mut attempts);
        (
            result,
            DispatchTrace {
                cache_hit,
                attempts: attempts.unwrap_or_default(),
            },
        )
    }

    fn run_one_inner(
        &self,
        job: &SimJob,
        deadline: Option<std::time::Duration>,
        attempts: &mut Option<Vec<AttemptRecord>>,
    ) -> (JobResult, bool) {
        let start = Instant::now();
        let key = job.key();
        self.metrics.record_submitted(1);
        let mut policy = self.policy;
        if let Some(limit) = deadline {
            policy.timeout = Some(policy.timeout.map_or(limit, |t| t.min(limit)));
        }
        let (result, hit) = if let Some(hit) = self.cache.get(&key) {
            self.metrics.record_cache_hits(1);
            (hit, true)
        } else {
            // The supervisor records per-attempt executed/failed counts.
            let result = crate::supervise::execute_traced(job, &policy, &self.metrics, attempts);
            self.record_telemetry(&result);
            self.cache.insert(key, result.clone());
            (result, false)
        };
        self.metrics.record_phase(PhaseStats {
            name: job.label(),
            jobs: 1,
            cache_hits: usize::from(hit),
            wall: start.elapsed(),
        });
        (result, hit)
    }

    /// Appends an externally-measured phase to the metrics phase log —
    /// the hook layers above the runtime use to account work the
    /// runtime itself did not schedule (e.g. a report's virtual-time
    /// load simulation or a chaos sweep), so `regen_all --json`
    /// attributes their wall time alongside the batch phases.
    pub fn note_phase(&self, stats: PhaseStats) {
        self.metrics.record_phase(stats);
    }

    /// Accounts a freshly-executed result's fabric telemetry (cache
    /// hits are deliberately not re-counted).
    fn record_telemetry(&self, result: &JobResult) {
        match result {
            Ok(SimOutput::Telemetry(run)) => {
                self.metrics.record_telemetry(run.fabric.total_events());
            }
            Ok(SimOutput::Search(search)) => {
                self.metrics.record_search(&search.counters);
            }
            _ => {}
        }
    }

    /// Runs a batch under an anonymous phase label.
    ///
    /// See [`Runtime::run_phase`] for the full contract.
    pub fn run_batch(&self, jobs: &[SimJob]) -> Vec<JobResult> {
        self.run_phase("batch", jobs)
    }

    /// Runs a named batch of jobs and returns their results **in job
    /// order** (results[i] belongs to jobs[i], regardless of which
    /// worker finished first).
    ///
    /// Previously-cached and intra-batch duplicate jobs are served
    /// without re-executing and counted as cache hits. The phase's
    /// job count, hit count, and wall time are appended to the metrics
    /// phase log under `name`.
    pub fn run_phase(&self, name: &str, jobs: &[SimJob]) -> Vec<JobResult> {
        let start = Instant::now();
        self.metrics.record_submitted(jobs.len());

        let keys: Vec<JobKey> = jobs.iter().map(SimJob::key).collect();
        let mut completed: BTreeMap<JobKey, JobResult> = BTreeMap::new();
        let mut misses: Vec<(JobKey, &SimJob)> = Vec::new();
        for (key, job) in keys.iter().zip(jobs) {
            if completed.contains_key(key) || misses.iter().any(|(k, _)| k == key) {
                continue; // intra-batch duplicate
            }
            if let Some(hit) = self.cache.get(key) {
                completed.insert(key.clone(), hit);
            } else {
                misses.push((key.clone(), job));
            }
        }
        let cache_hits = jobs.len() - misses.len();
        self.metrics.record_cache_hits(cache_hits);

        // Workers reply on an unbounded channel, so they never block on
        // us and we can safely block on the bounded task queue.
        let (reply_tx, reply_rx) = channel();
        for (ticket, (_, job)) in misses.iter().enumerate() {
            self.metrics.job_enqueued();
            self.pool
                .submit(ticket as u64, (*job).clone(), reply_tx.clone());
        }
        drop(reply_tx);
        for (ticket, result) in reply_rx {
            let key = misses[ticket as usize].0.clone();
            self.record_telemetry(&result);
            self.cache.insert(key.clone(), result.clone());
            completed.insert(key, result);
        }

        self.metrics.record_phase(PhaseStats {
            name: name.to_owned(),
            jobs: jobs.len(),
            cache_hits,
            wall: start.elapsed(),
        });
        keys.iter()
            .map(|key| {
                completed
                    .get(key)
                    .cloned()
                    .expect("every submitted job must resolve")
            })
            .collect()
    }

    /// Maps every layer of a model onto one MAERI fabric configuration
    /// and runs the whole network as a batch (CONV layers use `policy`,
    /// FC/LSTM/pool layers their dedicated mappers). Results are in
    /// model layer order.
    pub fn run_network(&self, cfg: MaeriConfig, model: &Model, policy: VnPolicy) -> Vec<JobResult> {
        let jobs: Vec<SimJob> = model
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv(l) => SimJob::dense_conv(cfg, l.clone(), policy),
                Layer::Fc(l) => SimJob::Fc {
                    cfg,
                    layer: l.clone(),
                },
                Layer::Pool(l) => SimJob::Pool {
                    cfg,
                    layer: l.clone(),
                },
                Layer::Lstm(l) => SimJob::Lstm {
                    cfg,
                    layer: l.clone(),
                },
                // `Layer` is non-exhaustive upstream; a new layer kind
                // needs a mapper before the runtime can schedule it.
                other => unimplemented!("no job mapping for layer {}", other.name()),
            })
            .collect();
        self.run_phase(model.name(), &jobs)
    }
}

fn default_workers() -> usize {
    if let Ok(raw) = std::env::var(WORKERS_ENV) {
        if let Ok(workers) = raw.trim().parse::<usize>() {
            if workers > 0 {
                return workers;
            }
        }
        eprintln!("warning: ignoring invalid {WORKERS_ENV}={raw:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_dnn::ConvLayer;

    fn layer(name: &str) -> ConvLayer {
        ConvLayer::new(name, 3, 16, 16, 8, 3, 3, 1, 1)
    }

    #[test]
    fn results_are_in_job_order() {
        let runtime = Runtime::new(4);
        let jobs: Vec<SimJob> = (0..8)
            .map(|i| {
                SimJob::dense_conv(
                    MaeriConfig::paper_64(),
                    layer(&format!("l{i}")),
                    VnPolicy::Auto,
                )
            })
            .collect();
        let results = runtime.run_batch(&jobs);
        assert_eq!(results.len(), jobs.len());
        for (i, result) in results.iter().enumerate() {
            let stats = result.as_ref().unwrap().run_stats().unwrap();
            assert_eq!(stats.label, format!("l{i}"));
        }
    }

    #[test]
    fn repeat_batches_hit_the_cache() {
        let runtime = Runtime::new(2);
        let jobs = vec![SimJob::dense_conv(
            MaeriConfig::paper_64(),
            layer("repeat"),
            VnPolicy::Auto,
        )];
        let first = runtime.run_phase("cold", &jobs);
        let second = runtime.run_phase("warm", &jobs);
        assert_eq!(first, second);
        let snapshot = runtime.metrics();
        assert_eq!(snapshot.executed, 1);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.phases.len(), 2);
        assert_eq!(snapshot.phases[1].cache_hits, 1);
    }

    #[test]
    fn intra_batch_duplicates_execute_once() {
        let runtime = Runtime::new(2);
        let job = SimJob::dense_conv(MaeriConfig::paper_64(), layer("dup"), VnPolicy::Auto);
        let results = runtime.run_batch(&[job.clone(), job.clone(), job]);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        let snapshot = runtime.metrics();
        assert_eq!(snapshot.executed, 1);
        assert_eq!(snapshot.cache_hits, 2);
    }

    #[test]
    fn panic_poisons_one_result_not_the_batch() {
        let runtime = Runtime::new(2);
        let jobs = vec![
            SimJob::health_check(),
            SimJob::poison("deliberate failure"),
            SimJob::dense_conv(MaeriConfig::paper_64(), layer("survivor"), VnPolicy::Auto),
        ];
        let results = runtime.run_batch(&jobs);
        assert!(results[0].is_ok());
        assert!(matches!(
            &results[1],
            Err(crate::JobError::Panicked(message)) if message == "deliberate failure"
        ));
        assert!(results[2].is_ok());
        let snapshot = runtime.metrics();
        assert_eq!(snapshot.failed, 1);
    }

    #[test]
    fn run_network_covers_every_layer() {
        let runtime = Runtime::new(2);
        let model = maeri_dnn::zoo::alexnet();
        let results = runtime.run_network(MaeriConfig::paper_64(), &model, VnPolicy::Auto);
        assert_eq!(results.len(), model.layers().len());
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn deadline_turns_a_wedged_job_into_a_timeout() {
        let runtime = Runtime::new(1);
        let result = runtime.run_one_with_deadline(
            &SimJob::wedge(5_000),
            Some(std::time::Duration::from_millis(20)),
        );
        assert!(matches!(result, Err(crate::JobError::TimedOut(_))));
        // The timeout is transient: it must not be cached, so a
        // deadline-free re-run executes the job for real.
        assert_eq!(runtime.metrics().timeouts, 1);
        assert_eq!(runtime.cache_stats().entries, 0);
    }

    #[test]
    fn deadline_clamps_but_never_extends_the_policy_watchdog() {
        let policy = RetryPolicy::default().with_timeout(std::time::Duration::from_millis(20));
        let runtime = Runtime::with_policy(1, policy);
        // A generous per-request deadline must not loosen the policy's
        // own 20 ms watchdog.
        let start = Instant::now();
        let result = runtime.run_one_with_deadline(
            &SimJob::wedge(5_000),
            Some(std::time::Duration::from_secs(30)),
        );
        assert!(matches!(result, Err(crate::JobError::TimedOut(_))));
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn run_one_matches_batch_execution() {
        let runtime = Runtime::new(1);
        let job = SimJob::dense_conv(MaeriConfig::paper_64(), layer("solo"), VnPolicy::Auto);
        let solo = runtime.run_one(&job);
        let batched = Runtime::new(1).run_batch(std::slice::from_ref(&job));
        assert_eq!(solo, batched[0]);
    }

    #[test]
    fn telemetry_jobs_feed_the_telemetry_counters() {
        let runtime = Runtime::new(2);
        let job = SimJob::telemetry_conv(MaeriConfig::paper_64(), layer("probe"), VnPolicy::Auto);
        let results = runtime.run_batch(std::slice::from_ref(&job));
        let run = results[0].as_ref().unwrap().telemetry().unwrap();
        let snap = runtime.metrics();
        assert_eq!(snap.telemetry_runs, 1);
        assert_eq!(snap.telemetry_events, run.fabric.total_events());
        // A cache hit must not inflate the counters.
        let _ = runtime.run_one(&job);
        assert_eq!(runtime.metrics().telemetry_runs, 1);
    }

    #[test]
    fn env_override_parses_strictly() {
        // Do not mutate the process environment (tests run in
        // parallel); exercise the parser contract indirectly instead.
        assert!(Runtime::global().num_workers() >= 1);
    }
}
