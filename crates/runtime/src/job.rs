//! Simulation job descriptions and their content-hash identity.

use maeri::analytic;
use maeri::cycle_sim::{
    simulate_conv_iteration, simulate_conv_layer_telemetry, LaneSpec, TraceStats,
};
use maeri::{
    CandidateKind, ConvMapper, CrossLayerMapper, FcMapper, LoopOrder, LstmMapper, MaeriConfig,
    MappingCandidate, PoolMapper, SparseConvMapper, VnPolicy,
};
use maeri_baselines::{FixedClusterArray, RowStationary, SystolicArray};
use maeri_dnn::{ConvLayer, FcLayer, LstmLayer, PoolLayer, WeightMask};
use maeri_mapspace::{SearchLayer, SearchSpec, Strategy};
use maeri_sim::SimRng;
use maeri_verify::{statically_reject, VerifyLayer};

use crate::output::{JobError, JobResult, SimOutput, TelemetryRun};

/// The modelling fidelity a job runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Closed-form cost model (mappers, baselines, walk-throughs).
    Analytic,
    /// Clocked cycle-by-cycle trace of the fabric.
    CycleTrace,
}

/// One simulation request: everything needed to reproduce one point of
/// a sweep, and nothing environment-dependent.
///
/// Jobs deliberately carry *descriptions* (e.g. a sparsity fraction and
/// mask seed rather than a materialized [`WeightMask`]) so that their
/// [content key](SimJob::key) is small and two textually identical
/// requests are recognized as the same work.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimJob {
    /// Dense CONV on the MAERI fabric.
    DenseConv {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: ConvLayer,
        /// VN-sizing policy.
        policy: VnPolicy,
    },
    /// Sparse CONV on the MAERI fabric. The weight mask is regenerated
    /// deterministically from `(layer, zero_fraction, mask_seed)`.
    SparseConv {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: ConvLayer,
        /// Fraction of zero weights in `[0, 1]`.
        zero_fraction: f64,
        /// Channels per neuron slice.
        channel_tile: usize,
        /// Seed for the mask generator.
        mask_seed: u64,
    },
    /// Cross-layer fused CONV chain on the MAERI fabric.
    FusedConvChain {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// The fused layers, producer to consumer.
        layers: Vec<ConvLayer>,
    },
    /// Fully-connected layer on the MAERI fabric.
    Fc {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: FcLayer,
    },
    /// LSTM layer on the MAERI fabric.
    Lstm {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: LstmLayer,
    },
    /// Max-pool layer on the MAERI fabric.
    Pool {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: PoolLayer,
    },
    /// Dense CONV on the weight-stationary systolic-array baseline.
    SystolicConv {
        /// PE rows.
        rows: usize,
        /// PE columns.
        cols: usize,
        /// SRAM bandwidth in words/cycle.
        sram_bandwidth: usize,
        /// Layer to run.
        layer: ConvLayer,
    },
    /// Fully-connected layer on the weight-stationary systolic-array
    /// baseline (fleet scheduling probes FC layers on every backend).
    SystolicFc {
        /// PE rows.
        rows: usize,
        /// PE columns.
        cols: usize,
        /// SRAM bandwidth in words/cycle.
        sram_bandwidth: usize,
        /// Layer to run.
        layer: FcLayer,
    },
    /// Dense CONV on the row-stationary (Eyeriss-like) baseline.
    RowStationaryConv {
        /// PE rows.
        rows: usize,
        /// PE columns.
        cols: usize,
        /// SRAM bandwidth in words/cycle.
        sram_bandwidth: usize,
        /// Layer to run.
        layer: ConvLayer,
    },
    /// Sparse CONV on the fixed-cluster baseline (mask regenerated as
    /// for [`SimJob::SparseConv`]).
    ClusterSparseConv {
        /// Number of clusters.
        clusters: usize,
        /// PEs per cluster.
        cluster_size: usize,
        /// Shared-bus bandwidth in words/cycle.
        bus_bandwidth: usize,
        /// Layer to run.
        layer: ConvLayer,
        /// Fraction of zero weights in `[0, 1]`.
        zero_fraction: f64,
        /// Channels per neuron slice.
        channel_tile: usize,
        /// Seed for the mask generator.
        mask_seed: u64,
    },
    /// Fused CONV chain on the fixed-cluster baseline.
    ClusterFusedChain {
        /// Number of clusters.
        clusters: usize,
        /// PEs per cluster.
        cluster_size: usize,
        /// Shared-bus bandwidth in words/cycle.
        bus_bandwidth: usize,
        /// The fused layers, producer to consumer.
        layers: Vec<ConvLayer>,
    },
    /// Section 6.3 analytic walk-through of a systolic array.
    AnalyticSystolic {
        /// Layer to analyse.
        layer: ConvLayer,
        /// PE rows.
        rows: usize,
        /// PE columns.
        cols: usize,
    },
    /// Section 6.3 analytic walk-through of a MAERI fabric.
    AnalyticMaeri {
        /// Layer to analyse.
        layer: ConvLayer,
        /// Multiplier switches.
        num_ms: usize,
        /// Distribution bandwidth in words/cycle.
        dist_bw: usize,
    },
    /// Clocked cycle-trace of one CONV mapping iteration
    /// ([`Fidelity::CycleTrace`]).
    ConvTrace {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// The lanes (virtual neurons) of the iteration.
        lanes: Vec<LaneSpec>,
        /// Outputs per lane.
        steps: u64,
        /// Input words multicast to every lane per step.
        shared_inputs: usize,
    },
    /// Clocked cycle-trace of a full CONV layer with fabric telemetry
    /// captured ([`Fidelity::CycleTrace`]): link utilization per tree
    /// level, multiplier busy fraction, stall fractions, and the
    /// VN-latency histogram.
    TelemetryConv {
        /// Fabric configuration.
        cfg: MaeriConfig,
        /// Layer to map.
        layer: ConvLayer,
        /// VN-sizing policy.
        policy: VnPolicy,
    },
    /// Mapping-space search for one layer: enumerate candidates, score
    /// them analytically, trace-validate the frontier (see
    /// [`maeri_mapspace::search`]).
    MapSearch {
        /// The full search description.
        spec: SearchSpec,
    },
    /// Scheduler health-check probe. Completes immediately, panics
    /// with the given message, or stalls for a fixed wall-clock time —
    /// used to verify panic isolation and the timeout watchdog.
    Probe {
        /// When `Some`, the job panics with this message.
        panic_with: Option<String>,
        /// Wall-clock milliseconds to sleep before completing; models a
        /// wedged simulation for timeout tests.
        stall_ms: u64,
    },
}

impl SimJob {
    /// Dense CONV on MAERI (see [`SimJob::DenseConv`]).
    #[must_use]
    pub fn dense_conv(cfg: MaeriConfig, layer: ConvLayer, policy: VnPolicy) -> Self {
        SimJob::DenseConv { cfg, layer, policy }
    }

    /// Sparse CONV on MAERI (see [`SimJob::SparseConv`]).
    #[must_use]
    pub fn sparse_conv(
        cfg: MaeriConfig,
        layer: ConvLayer,
        zero_fraction: f64,
        channel_tile: usize,
        mask_seed: u64,
    ) -> Self {
        SimJob::SparseConv {
            cfg,
            layer,
            zero_fraction,
            channel_tile,
            mask_seed,
        }
    }

    /// Fused CONV chain on MAERI (see [`SimJob::FusedConvChain`]).
    #[must_use]
    pub fn fused_chain(cfg: MaeriConfig, layers: Vec<ConvLayer>) -> Self {
        SimJob::FusedConvChain { cfg, layers }
    }

    /// Systolic-array baseline CONV (see [`SimJob::SystolicConv`]).
    #[must_use]
    pub fn systolic_conv(
        rows: usize,
        cols: usize,
        sram_bandwidth: usize,
        layer: ConvLayer,
    ) -> Self {
        SimJob::SystolicConv {
            rows,
            cols,
            sram_bandwidth,
            layer,
        }
    }

    /// Systolic-array baseline FC (see [`SimJob::SystolicFc`]).
    #[must_use]
    pub fn systolic_fc(rows: usize, cols: usize, sram_bandwidth: usize, layer: FcLayer) -> Self {
        SimJob::SystolicFc {
            rows,
            cols,
            sram_bandwidth,
            layer,
        }
    }

    /// Row-stationary baseline CONV (see [`SimJob::RowStationaryConv`]).
    #[must_use]
    pub fn row_stationary_conv(
        rows: usize,
        cols: usize,
        sram_bandwidth: usize,
        layer: ConvLayer,
    ) -> Self {
        SimJob::RowStationaryConv {
            rows,
            cols,
            sram_bandwidth,
            layer,
        }
    }

    /// Telemetry-instrumented CONV on MAERI (see
    /// [`SimJob::TelemetryConv`]).
    #[must_use]
    pub fn telemetry_conv(cfg: MaeriConfig, layer: ConvLayer, policy: VnPolicy) -> Self {
        SimJob::TelemetryConv { cfg, layer, policy }
    }

    /// Mapping-space search for one layer (see [`SimJob::MapSearch`]).
    #[must_use]
    pub fn map_search(spec: SearchSpec) -> Self {
        SimJob::MapSearch { spec }
    }

    /// A probe that succeeds immediately.
    #[must_use]
    pub fn health_check() -> Self {
        SimJob::Probe {
            panic_with: None,
            stall_ms: 0,
        }
    }

    /// A probe that panics — for exercising the pool's panic isolation.
    #[must_use]
    pub fn poison(message: impl Into<String>) -> Self {
        SimJob::Probe {
            panic_with: Some(message.into()),
            stall_ms: 0,
        }
    }

    /// A probe that wedges for `stall_ms` wall-clock milliseconds
    /// before succeeding — for exercising the timeout watchdog.
    #[must_use]
    pub fn wedge(stall_ms: u64) -> Self {
        SimJob::Probe {
            panic_with: None,
            stall_ms,
        }
    }

    /// The fidelity level this job models at.
    #[must_use]
    pub fn fidelity(&self) -> Fidelity {
        match self {
            SimJob::ConvTrace { .. } | SimJob::TelemetryConv { .. } => Fidelity::CycleTrace,
            // A dense-CONV search trace-validates its frontier; the
            // other layer kinds are scored purely closed-form.
            SimJob::MapSearch { spec } => match spec.layer {
                SearchLayer::Conv(_) => Fidelity::CycleTrace,
                _ => Fidelity::Analytic,
            },
            _ => Fidelity::Analytic,
        }
    }

    /// A short label for logs and progress reporting.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SimJob::DenseConv { layer, .. } => format!("maeri/conv/{}", layer.name),
            SimJob::SparseConv {
                layer,
                zero_fraction,
                ..
            } => format!("maeri/sparse/{}@{:.0}%", layer.name, zero_fraction * 100.0),
            SimJob::FusedConvChain { layers, .. } => {
                format!("maeri/fused/{}x", layers.len())
            }
            SimJob::Fc { layer, .. } => format!("maeri/fc/{}", layer.name),
            SimJob::Lstm { layer, .. } => format!("maeri/lstm/{}", layer.name),
            SimJob::Pool { layer, .. } => format!("maeri/pool/{}", layer.name),
            SimJob::SystolicConv { layer, .. } => format!("systolic/conv/{}", layer.name),
            SimJob::SystolicFc { layer, .. } => format!("systolic/fc/{}", layer.name),
            SimJob::RowStationaryConv { layer, .. } => format!("rowstat/conv/{}", layer.name),
            SimJob::ClusterSparseConv { layer, .. } => format!("cluster/sparse/{}", layer.name),
            SimJob::ClusterFusedChain { layers, .. } => format!("cluster/fused/{}x", layers.len()),
            SimJob::AnalyticSystolic { layer, .. } => format!("analytic/systolic/{}", layer.name),
            SimJob::AnalyticMaeri { layer, .. } => format!("analytic/maeri/{}", layer.name),
            SimJob::ConvTrace { lanes, .. } => format!("trace/conv/{}lanes", lanes.len()),
            SimJob::TelemetryConv { layer, .. } => format!("telemetry/conv/{}", layer.name),
            SimJob::MapSearch { spec } => {
                format!("search/{}/{}", spec.layer.kind_label(), spec.layer.name())
            }
            SimJob::Probe {
                panic_with,
                stall_ms,
            } => match (panic_with, stall_ms) {
                (Some(_), _) => "probe/poison".to_owned(),
                (None, 0) => "probe/health".to_owned(),
                (None, _) => "probe/wedge".to_owned(),
            },
        }
    }

    /// Static pre-flight verification: job kinds the static verifier
    /// covers fail fast with a structured, deterministic
    /// [`JobError::InvalidMapping`] — before any mapper runs or any
    /// cycle is clocked. Sound: it only rejects jobs whose execution
    /// would fail too, so legal jobs are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::InvalidMapping`] carrying the violation and
    /// its minimal counterexample.
    pub fn verify(&self) -> Result<(), JobError> {
        let violation = match self {
            SimJob::DenseConv {
                cfg,
                layer,
                policy: VnPolicy::Explicit(m),
            } => {
                let cand = MappingCandidate::with_base_bandwidth(CandidateKind::Conv(*m), cfg);
                statically_reject(cfg, &VerifyLayer::Conv(layer), &cand)
            }
            SimJob::SparseConv {
                cfg,
                layer,
                zero_fraction,
                channel_tile,
                mask_seed,
            } => {
                let mask = regenerate_mask(layer, *zero_fraction, *mask_seed);
                let cand = MappingCandidate::with_base_bandwidth(
                    CandidateKind::SparseConv {
                        channel_tile: *channel_tile,
                    },
                    cfg,
                );
                statically_reject(cfg, &VerifyLayer::SparseConv { layer, mask: &mask }, &cand)
            }
            // Trace lanes carry raw VN sizes; bounds-check them against
            // the fabric before building any flit stream.
            SimJob::ConvTrace { cfg, lanes, .. } => lanes
                .iter()
                .find_map(|lane| cfg.validate_vn_size(lane.vn_size).err())
                .map(|err| maeri_verify::VerifyError::Config {
                    message: err.to_string(),
                }),
            _ => None,
        };
        match violation {
            Some(err) => Err(JobError::InvalidMapping(err.to_string())),
            None => Ok(()),
        }
    }

    /// Executes the job to completion. Pure: the result depends only on
    /// the job description, never on scheduling.
    ///
    /// # Panics
    ///
    /// A [`SimJob::Probe`] with a poison message panics by design (the
    /// worker pool converts the panic into a failed [`JobResult`]).
    /// Mapper-internal invariant violations also surface as panics and
    /// are isolated the same way.
    pub fn execute(&self) -> JobResult {
        self.verify()?;
        match self {
            SimJob::DenseConv { cfg, layer, policy } => {
                Ok(SimOutput::Run(ConvMapper::new(*cfg).run(layer, *policy)?))
            }
            SimJob::SparseConv {
                cfg,
                layer,
                zero_fraction,
                channel_tile,
                mask_seed,
            } => {
                let mask = regenerate_mask(layer, *zero_fraction, *mask_seed);
                Ok(SimOutput::Run(SparseConvMapper::new(*cfg).run(
                    layer,
                    &mask,
                    *channel_tile,
                )?))
            }
            SimJob::FusedConvChain { cfg, layers } => {
                Ok(SimOutput::Run(CrossLayerMapper::new(*cfg).run(layers)?))
            }
            SimJob::Fc { cfg, layer } => Ok(SimOutput::Run(FcMapper::new(*cfg).run(layer)?)),
            SimJob::Lstm { cfg, layer } => Ok(SimOutput::Run(LstmMapper::new(*cfg).run(layer)?)),
            SimJob::Pool { cfg, layer } => Ok(SimOutput::Run(PoolMapper::new(*cfg).run(layer)?)),
            SimJob::SystolicConv {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => Ok(SimOutput::Run(
                SystolicArray::new(*rows, *cols, *sram_bandwidth).run_conv(layer),
            )),
            SimJob::SystolicFc {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => Ok(SimOutput::Run(
                SystolicArray::new(*rows, *cols, *sram_bandwidth).run_fc(layer),
            )),
            SimJob::RowStationaryConv {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => Ok(SimOutput::Run(
                RowStationary::new(*rows, *cols, *sram_bandwidth).run_conv(layer),
            )),
            SimJob::ClusterSparseConv {
                clusters,
                cluster_size,
                bus_bandwidth,
                layer,
                zero_fraction,
                channel_tile,
                mask_seed,
            } => {
                let mask = regenerate_mask(layer, *zero_fraction, *mask_seed);
                Ok(SimOutput::Run(
                    FixedClusterArray::new(*clusters, *cluster_size, *bus_bandwidth).run_conv(
                        layer,
                        &mask,
                        *channel_tile,
                    )?,
                ))
            }
            SimJob::ClusterFusedChain {
                clusters,
                cluster_size,
                bus_bandwidth,
                layers,
            } => Ok(SimOutput::Run(
                FixedClusterArray::new(*clusters, *cluster_size, *bus_bandwidth)
                    .run_fused(layers)?,
            )),
            SimJob::AnalyticSystolic { layer, rows, cols } => Ok(SimOutput::Analytic(
                analytic::systolic_example(layer, *rows, *cols),
            )),
            SimJob::AnalyticMaeri {
                layer,
                num_ms,
                dist_bw,
            } => Ok(SimOutput::Analytic(analytic::maeri_example(
                layer, *num_ms, *dist_bw,
            ))),
            SimJob::ConvTrace {
                cfg,
                lanes,
                steps,
                shared_inputs,
            } => {
                let trace: TraceStats =
                    simulate_conv_iteration(cfg, lanes, *steps, *shared_inputs)?;
                Ok(SimOutput::Trace(trace))
            }
            SimJob::TelemetryConv { cfg, layer, policy } => {
                let (trace, fabric) = simulate_conv_layer_telemetry(cfg, layer, *policy)?;
                Ok(SimOutput::Telemetry(Box::new(TelemetryRun {
                    trace,
                    fabric,
                })))
            }
            SimJob::MapSearch { spec } => {
                Ok(SimOutput::Search(Box::new(maeri_mapspace::search(spec)?)))
            }
            SimJob::Probe {
                panic_with,
                stall_ms,
            } => {
                if let Some(message) = panic_with {
                    panic!("{}", message.clone());
                }
                if *stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(*stall_ms));
                }
                Ok(SimOutput::Run(maeri::RunStats::new(
                    "probe",
                    1,
                    maeri_sim::Cycle::ONE,
                    1,
                )))
            }
        }
    }

    /// The job's content key: a canonical byte encoding of every field
    /// that affects the result. Two jobs with equal keys compute the
    /// same output, so the key doubles as the cache identity.
    #[must_use]
    pub fn key(&self) -> JobKey {
        let mut enc = KeyEncoder::new();
        match self {
            SimJob::DenseConv { cfg, layer, policy } => {
                enc.tag(1);
                enc.config(cfg);
                enc.conv(layer);
                enc.policy(policy);
            }
            SimJob::SparseConv {
                cfg,
                layer,
                zero_fraction,
                channel_tile,
                mask_seed,
            } => {
                enc.tag(2);
                enc.config(cfg);
                enc.conv(layer);
                enc.f64(*zero_fraction);
                enc.usize(*channel_tile);
                enc.u64(*mask_seed);
            }
            SimJob::FusedConvChain { cfg, layers } => {
                enc.tag(3);
                enc.config(cfg);
                enc.usize(layers.len());
                for layer in layers {
                    enc.conv(layer);
                }
            }
            SimJob::Fc { cfg, layer } => {
                enc.tag(4);
                enc.config(cfg);
                enc.str(&layer.name);
                enc.usize(layer.inputs);
                enc.usize(layer.outputs);
            }
            SimJob::Lstm { cfg, layer } => {
                enc.tag(5);
                enc.config(cfg);
                enc.str(&layer.name);
                enc.usize(layer.input_dim);
                enc.usize(layer.hidden_dim);
            }
            SimJob::Pool { cfg, layer } => {
                enc.tag(6);
                enc.config(cfg);
                enc.str(&layer.name);
                enc.usize(layer.channels);
                enc.usize(layer.in_h);
                enc.usize(layer.in_w);
                enc.usize(layer.window);
                enc.usize(layer.stride);
            }
            SimJob::SystolicConv {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => {
                enc.tag(7);
                enc.usize(*rows);
                enc.usize(*cols);
                enc.usize(*sram_bandwidth);
                enc.conv(layer);
            }
            SimJob::SystolicFc {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => {
                enc.tag(17);
                enc.usize(*rows);
                enc.usize(*cols);
                enc.usize(*sram_bandwidth);
                enc.str(&layer.name);
                enc.usize(layer.inputs);
                enc.usize(layer.outputs);
            }
            SimJob::RowStationaryConv {
                rows,
                cols,
                sram_bandwidth,
                layer,
            } => {
                enc.tag(8);
                enc.usize(*rows);
                enc.usize(*cols);
                enc.usize(*sram_bandwidth);
                enc.conv(layer);
            }
            SimJob::ClusterSparseConv {
                clusters,
                cluster_size,
                bus_bandwidth,
                layer,
                zero_fraction,
                channel_tile,
                mask_seed,
            } => {
                enc.tag(9);
                enc.usize(*clusters);
                enc.usize(*cluster_size);
                enc.usize(*bus_bandwidth);
                enc.conv(layer);
                enc.f64(*zero_fraction);
                enc.usize(*channel_tile);
                enc.u64(*mask_seed);
            }
            SimJob::ClusterFusedChain {
                clusters,
                cluster_size,
                bus_bandwidth,
                layers,
            } => {
                enc.tag(10);
                enc.usize(*clusters);
                enc.usize(*cluster_size);
                enc.usize(*bus_bandwidth);
                enc.usize(layers.len());
                for layer in layers {
                    enc.conv(layer);
                }
            }
            SimJob::AnalyticSystolic { layer, rows, cols } => {
                enc.tag(11);
                enc.conv(layer);
                enc.usize(*rows);
                enc.usize(*cols);
            }
            SimJob::AnalyticMaeri {
                layer,
                num_ms,
                dist_bw,
            } => {
                enc.tag(12);
                enc.conv(layer);
                enc.usize(*num_ms);
                enc.usize(*dist_bw);
            }
            SimJob::ConvTrace {
                cfg,
                lanes,
                steps,
                shared_inputs,
            } => {
                enc.tag(13);
                enc.config(cfg);
                enc.usize(lanes.len());
                for lane in lanes {
                    enc.usize(lane.vn_size);
                    enc.usize(lane.fresh_inputs_per_step);
                }
                enc.u64(*steps);
                enc.usize(*shared_inputs);
            }
            SimJob::TelemetryConv { cfg, layer, policy } => {
                enc.tag(15);
                enc.config(cfg);
                enc.conv(layer);
                enc.policy(policy);
            }
            SimJob::MapSearch { spec } => {
                enc.tag(16);
                enc.config(&spec.base);
                match &spec.layer {
                    SearchLayer::Conv(layer) => {
                        enc.tag(0);
                        enc.conv(layer);
                    }
                    SearchLayer::SparseConv {
                        layer,
                        zero_fraction,
                        mask_seed,
                    } => {
                        enc.tag(1);
                        enc.conv(layer);
                        enc.f64(*zero_fraction);
                        enc.u64(*mask_seed);
                    }
                    SearchLayer::Fc(layer) => {
                        enc.tag(2);
                        enc.str(&layer.name);
                        enc.usize(layer.inputs);
                        enc.usize(layer.outputs);
                    }
                    SearchLayer::Lstm(layer) => {
                        enc.tag(3);
                        enc.str(&layer.name);
                        enc.usize(layer.input_dim);
                        enc.usize(layer.hidden_dim);
                    }
                }
                enc.usize(spec.bandwidths.len());
                for (dist, collect) in &spec.bandwidths {
                    enc.usize(*dist);
                    enc.usize(*collect);
                }
                match spec.strategy {
                    Strategy::Exhaustive => enc.tag(0),
                    Strategy::Random { seed, samples } => {
                        enc.tag(1);
                        enc.u64(seed);
                        enc.usize(samples);
                    }
                    Strategy::Beam { width, rounds } => {
                        enc.tag(2);
                        enc.usize(width);
                        enc.usize(rounds);
                    }
                }
                enc.usize(spec.top_k);
            }
            SimJob::Probe {
                panic_with,
                stall_ms,
            } => {
                enc.tag(14);
                match panic_with {
                    Some(message) => {
                        enc.tag(1);
                        enc.str(message);
                    }
                    None => enc.tag(0),
                }
                enc.u64(*stall_ms);
            }
        }
        enc.finish()
    }
}

/// Regenerates the deterministic weight mask a sparse job describes.
fn regenerate_mask(layer: &ConvLayer, zero_fraction: f64, seed: u64) -> WeightMask {
    WeightMask::generate(layer, zero_fraction, &mut SimRng::seed(seed))
}

/// Content identity of a [`SimJob`].
///
/// The key stores the job's full canonical encoding, so equal keys mean
/// equal jobs (a perfect content hash — no collision risk); a 64-bit
/// [fingerprint](JobKey::fingerprint) is derived for display.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey(Box<[u8]>);

impl JobKey {
    /// The key's canonical byte encoding. This is the identity the
    /// persistent result store (`maeri-serve`) writes to disk, so the
    /// encoding is append-only stable: new job kinds add tags, existing
    /// tags never change meaning.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Rebuilds a key from its canonical byte encoding (as returned by
    /// [`JobKey::as_bytes`]); used when replaying a persistent store
    /// log.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        JobKey(bytes.into_boxed_slice())
    }

    /// A short FNV-1a fingerprint for logs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in &self.0 {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.fingerprint())
    }
}

struct KeyEncoder {
    bytes: Vec<u8>,
}

impl KeyEncoder {
    fn new() -> Self {
        KeyEncoder { bytes: Vec::new() }
    }

    fn tag(&mut self, tag: u8) {
        self.bytes.push(tag);
    }

    fn u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    fn str(&mut self, value: &str) {
        self.usize(value.len());
        self.bytes.extend_from_slice(value.as_bytes());
    }

    fn config(&mut self, cfg: &MaeriConfig) {
        self.usize(cfg.num_mult_switches());
        self.usize(cfg.dist_bandwidth());
        self.usize(cfg.collect_bandwidth());
        self.usize(cfg.ms_local_buffers());
        // The fault spec reshapes mappings and schedules, so two
        // configs differing only in faults must never share a key.
        match cfg.faults() {
            None => self.tag(0),
            Some(spec) => {
                self.tag(1);
                self.u64(spec.seed);
                self.u64(u64::from(spec.dead_mult_permille));
                self.u64(u64::from(spec.dead_adder_permille));
                self.u64(u64::from(spec.dead_link_permille));
                self.u64(u64::from(spec.flit_drop_permille));
                self.u64(u64::from(spec.flit_delay_cycles));
            }
        }
    }

    fn conv(&mut self, layer: &ConvLayer) {
        self.str(&layer.name);
        self.usize(layer.in_channels);
        self.usize(layer.in_h);
        self.usize(layer.in_w);
        self.usize(layer.out_channels);
        self.usize(layer.kernel_h);
        self.usize(layer.kernel_w);
        self.usize(layer.stride);
        self.usize(layer.pad);
    }

    fn policy(&mut self, policy: &VnPolicy) {
        match policy {
            VnPolicy::FullFilter => self.tag(0),
            VnPolicy::ChannelsPerVn(channels) => {
                self.tag(1);
                self.usize(*channels);
            }
            VnPolicy::Auto => self.tag(2),
            VnPolicy::Explicit(mapping) => {
                self.tag(3);
                self.usize(mapping.channel_tile);
                self.usize(mapping.max_vns);
                self.tag(match mapping.loop_order {
                    LoopOrder::FilterMajor => 0,
                    LoopOrder::RowMajor => 1,
                });
            }
            // `VnPolicy` is non-exhaustive upstream; any new variant
            // must be given a stable encoding here before use.
            other => unimplemented!("no key encoding for VN policy {other:?}"),
        }
    }

    fn finish(self) -> JobKey {
        JobKey(self.bytes.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        ConvLayer::new("k", 3, 8, 8, 4, 3, 3, 1, 1)
    }

    #[test]
    fn key_bytes_round_trip() {
        let job = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let key = job.key();
        let rebuilt = JobKey::from_bytes(key.as_bytes().to_vec());
        assert_eq!(key, rebuilt);
        assert_eq!(key.fingerprint(), rebuilt.fingerprint());
    }

    #[test]
    fn identical_jobs_share_a_key() {
        let a = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let b = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn different_fields_change_the_key() {
        let base = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let policy = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::FullFilter);
        let cfg = SimJob::dense_conv(
            MaeriConfig::builder(128).build().unwrap(),
            layer(),
            VnPolicy::Auto,
        );
        assert_ne!(base.key(), policy.key());
        assert_ne!(base.key(), cfg.key());
    }

    #[test]
    fn variants_never_collide() {
        // Same layer through different designs must key differently.
        let dense = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let systolic = SimJob::systolic_conv(8, 8, 8, layer());
        let rowstat = SimJob::row_stationary_conv(8, 8, 8, layer());
        assert_ne!(dense.key(), systolic.key());
        assert_ne!(systolic.key(), rowstat.key());
    }

    #[test]
    fn systolic_fc_keys_labels_and_executes() {
        let fc = maeri_dnn::FcLayer::new("fc6", 256, 64);
        let job = SimJob::systolic_fc(8, 8, 8, fc.clone());
        assert_eq!(job.label(), "systolic/fc/fc6");
        assert_eq!(job.fidelity(), Fidelity::Analytic);
        assert_eq!(job.key(), SimJob::systolic_fc(8, 8, 8, fc.clone()).key());
        // The job must report exactly what the baseline reports.
        let direct = SystolicArray::new(8, 8, 8).run_fc(&fc);
        let run = job.execute().unwrap().into_run_stats();
        assert_eq!(run.cycles, direct.cycles);
        assert_eq!(run.sram_reads, direct.sram_reads);
        // Distinct from the MAERI FC job and from a resized array.
        let maeri_fc = SimJob::Fc {
            cfg: MaeriConfig::paper_64(),
            layer: fc.clone(),
        };
        assert_ne!(job.key(), maeri_fc.key());
        assert_ne!(job.key(), SimJob::systolic_fc(16, 16, 8, fc).key());
    }

    #[test]
    fn execute_is_pure() {
        let job = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let a = job.execute().unwrap().into_run_stats();
        let b = job.execute().unwrap().into_run_stats();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_mask_is_deterministic_from_description() {
        let job = SimJob::sparse_conv(MaeriConfig::paper_64(), layer(), 0.3, 3, 42);
        let a = job.execute().unwrap().into_run_stats();
        let b = job.execute().unwrap().into_run_stats();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.sram_reads, b.sram_reads);
    }

    #[test]
    fn unmappable_is_an_error_value() {
        // Channel tile larger than the channel count is rejected by the
        // static pre-flight verifier, before any mapper runs.
        let job = SimJob::sparse_conv(MaeriConfig::paper_64(), layer(), 0.0, 99, 1);
        let err = match job.execute() {
            Err(crate::JobError::InvalidMapping(msg)) => msg,
            other => panic!("expected InvalidMapping, got {other:?}"),
        };
        assert!(err.contains("channel_tile 99 out of range"), "{err}");
        // Deterministic, so cached — never retried.
        assert!(!crate::JobError::InvalidMapping(err).is_transient());
    }

    #[test]
    fn fault_spec_is_part_of_the_cache_identity() {
        let clean = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let degraded_cfg = MaeriConfig::builder(64)
            .distribution_bandwidth(8)
            .collection_bandwidth(8)
            .faults(maeri::FaultSpec::new(7).dead_multipliers(250))
            .build()
            .unwrap();
        let degraded = SimJob::dense_conv(degraded_cfg, layer(), VnPolicy::Auto);
        assert_ne!(
            clean.key(),
            degraded.key(),
            "configs differing only in faults must not share cached results"
        );
        let reseeded_cfg = MaeriConfig::builder(64)
            .distribution_bandwidth(8)
            .collection_bandwidth(8)
            .faults(maeri::FaultSpec::new(8).dead_multipliers(250))
            .build()
            .unwrap();
        let reseeded = SimJob::dense_conv(reseeded_cfg, layer(), VnPolicy::Auto);
        assert_ne!(degraded.key(), reseeded.key());
    }

    #[test]
    fn probe_kinds_key_and_label_distinctly() {
        assert_ne!(SimJob::health_check().key(), SimJob::wedge(10).key());
        assert_ne!(SimJob::wedge(10).key(), SimJob::wedge(20).key());
        assert_eq!(SimJob::wedge(10).label(), "probe/wedge");
    }

    #[test]
    fn telemetry_conv_keys_apart_from_dense_conv() {
        let dense = SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let telemetry = SimJob::telemetry_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        assert_ne!(dense.key(), telemetry.key());
        assert_eq!(telemetry.fidelity(), Fidelity::CycleTrace);
        assert_eq!(telemetry.label(), "telemetry/conv/k");
    }

    #[test]
    fn telemetry_conv_carries_trace_and_fabric() {
        let job = SimJob::telemetry_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto);
        let out = job.execute().unwrap();
        let run = out.telemetry().expect("telemetry output");
        assert!(run.trace.cycles.as_u64() > 0);
        assert!(run.fabric.cycles > 0);
        assert!(run.fabric.total_events() > 0);
        assert_eq!(out.trace_stats(), Some(&run.trace));
        let again = job.execute().unwrap();
        assert_eq!(out.canonical_text(), again.canonical_text());
    }

    #[test]
    fn map_search_keys_label_and_execute() {
        let spec = SearchSpec::new(SearchLayer::Conv(layer()), MaeriConfig::paper_64());
        let job = SimJob::map_search(spec.clone());
        assert_eq!(job.label(), "search/conv/k");
        assert_eq!(job.fidelity(), Fidelity::CycleTrace);
        assert_eq!(job.key(), SimJob::map_search(spec.clone()).key());
        // Every spec knob participates in the cache identity.
        let other_strategy = SimJob::map_search(spec.clone().with_strategy(Strategy::Random {
            seed: 1,
            samples: 5,
        }));
        let other_top_k = SimJob::map_search(spec.clone().with_top_k(3));
        let other_bw = SimJob::map_search(spec.clone().with_bandwidths(vec![(4, 4)]));
        assert_ne!(job.key(), other_strategy.key());
        assert_ne!(job.key(), other_top_k.key());
        assert_ne!(job.key(), other_bw.key());
        let result = job.execute().unwrap();
        let search = result.search().expect("search output");
        assert!(search.best_cycles() <= search.heuristic_cycles());
        assert_eq!(
            result.canonical_text(),
            job.execute().unwrap().canonical_text()
        );
    }

    #[test]
    fn map_search_fidelity_tracks_layer_kind() {
        let fc = SimJob::map_search(SearchSpec::new(
            SearchLayer::Fc(maeri_dnn::FcLayer::new("fc", 64, 8)),
            MaeriConfig::paper_64(),
        ));
        assert_eq!(fc.fidelity(), Fidelity::Analytic);
        assert_eq!(fc.label(), "search/fc/fc");
    }

    #[test]
    fn explicit_policy_keys_stably() {
        use maeri::{ConvMapping, LoopOrder};
        let mapping = ConvMapping {
            channel_tile: 2,
            max_vns: 8,
            loop_order: LoopOrder::RowMajor,
        };
        let a = SimJob::dense_conv(
            MaeriConfig::paper_64(),
            layer(),
            VnPolicy::Explicit(mapping),
        );
        let b = SimJob::dense_conv(
            MaeriConfig::paper_64(),
            layer(),
            VnPolicy::Explicit(ConvMapping {
                loop_order: LoopOrder::FilterMajor,
                ..mapping
            }),
        );
        assert_eq!(a.key(), a.key());
        assert_ne!(a.key(), b.key());
        assert_ne!(
            a.key(),
            SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto).key()
        );
        assert!(a.execute().is_ok());
    }

    #[test]
    fn fidelity_classification() {
        assert_eq!(
            SimJob::dense_conv(MaeriConfig::paper_64(), layer(), VnPolicy::Auto).fidelity(),
            Fidelity::Analytic
        );
        let trace = SimJob::ConvTrace {
            cfg: MaeriConfig::paper_64(),
            lanes: vec![LaneSpec {
                vn_size: 9,
                fresh_inputs_per_step: 3,
            }],
            steps: 4,
            shared_inputs: 1,
        };
        assert_eq!(trace.fidelity(), Fidelity::CycleTrace);
    }
}
