//! # maeri-runtime — parallel batch execution for the MAERI simulator
//!
//! Every evaluation in the paper (Figs. 11-17, Table 3) is a *sweep*:
//! many `(fabric config, layer, mapper policy)` points. The simulator
//! crates expose one-point functions; this crate turns them into a
//! service-shaped execution engine:
//!
//! * [`SimJob`] describes one simulation request — fabric config,
//!   workload, mapper policy, and fidelity level (closed-form analytic
//!   vs clocked cycle-trace, see [`Fidelity`]);
//! * a worker pool built on `std::thread` + channels runs jobs behind a
//!   bounded queue with graceful shutdown and **panic isolation**: a
//!   panicking job is reported as a failed [`JobResult`], never a
//!   crashed process;
//! * every attempt runs under a [`RetryPolicy`]: transient failures
//!   (panics, timeouts) are retried with bounded doubling backoff,
//!   and a wedged job is abandoned by a watchdog as
//!   [`JobError::TimedOut`] instead of hanging the pool;
//! * a deterministic in-memory cache keyed by a content hash of the job
//!   ([`JobKey`]) computes identical points once, across batches and
//!   across callers sharing a [`Runtime`];
//! * [`RuntimeMetrics`] counts jobs submitted/executed/failed, cache
//!   hits, the queue high-water mark, and per-phase wall time;
//! * the traced entry point
//!   [`Runtime::run_one_traced_with_deadline`] additionally returns a
//!   [`DispatchTrace`] — cache-hit flag plus one classified
//!   [`AttemptRecord`] per supervised attempt — so the serving layer's
//!   flight recorder can show retries, timeouts, and panics instead of
//!   a single opaque dispatch interval.
//!
//! Determinism is a hard guarantee: [`Runtime::run_batch`] returns
//! results **ordered by job index, never by completion order**, and
//! every job executes a pure function of its description, so a batch
//! run with one worker is byte-identical (see
//! [`SimOutput::canonical_text`]) to the same batch with N workers.
//!
//! # Quick start
//!
//! ```
//! use maeri::{MaeriConfig, VnPolicy};
//! use maeri_dnn::ConvLayer;
//! use maeri_runtime::{Runtime, SimJob};
//!
//! let runtime = Runtime::new(2);
//! let layer = ConvLayer::new("conv", 3, 32, 32, 16, 3, 3, 1, 1);
//! let jobs = vec![
//!     SimJob::dense_conv(MaeriConfig::paper_64(), layer.clone(), VnPolicy::Auto),
//!     SimJob::systolic_conv(8, 8, 8, layer),
//! ];
//! let results = runtime.run_batch(&jobs);
//! let maeri = results[0].as_ref().unwrap().run_stats().unwrap();
//! let systolic = results[1].as_ref().unwrap().run_stats().unwrap();
//! assert!(maeri.utilization() >= systolic.utilization());
//! assert_eq!(runtime.metrics().executed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod metrics;
mod output;
mod pool;
mod runtime;
mod supervise;

pub use cache::{CacheStats, ResultCache};
pub use job::{Fidelity, JobKey, SimJob};
pub use metrics::{MetricsSnapshot, PhaseStats, RuntimeMetrics};
pub use output::{canonical_result_text, JobError, JobResult, SimOutput, TelemetryRun};
pub use runtime::{DispatchTrace, Runtime};
pub use supervise::{AttemptOutcome, AttemptRecord, RetryPolicy};
