//! Job supervision: bounded retry-with-backoff and a timeout watchdog.
//!
//! Every job attempt — on a pool worker or on the caller's thread via
//! [`crate::Runtime::run_one`] — funnels through
//! [`execute_supervised`], which applies the runtime's [`RetryPolicy`]:
//!
//! * **Transient failures retry.** A panic or a timeout says something
//!   about this execution, not the job; the supervisor re-attempts it
//!   up to [`RetryPolicy::max_attempts`] times with doubling backoff.
//!   A deterministic [`JobError::Sim`] rejection would only reproduce
//!   itself, so it never retries.
//! * **Wedged jobs time out.** With [`RetryPolicy::timeout`] set, each
//!   attempt runs on a disposable watchdog thread; past the deadline
//!   the attempt is reported as [`JobError::TimedOut`] and the thread
//!   is abandoned, never joined, so a livelocked simulation cannot hang
//!   the pool.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::job::SimJob;
use crate::metrics::RuntimeMetrics;
use crate::output::{JobError, JobResult};

/// How one supervised attempt ended, classified for observability:
/// the serving layer's flight recorder stamps this on each `attempt`
/// span instead of swallowing the distinction inside the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt produced a result.
    Ok,
    /// The simulator rejected the job deterministically.
    SimError,
    /// The pre-flight verifier proved the mapping illegal.
    InvalidMapping,
    /// The attempt panicked and was caught.
    Panic,
    /// The watchdog abandoned the attempt past its budget.
    Timeout,
}

impl AttemptOutcome {
    /// Stable snake_case tag used as the span status string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttemptOutcome::Ok => "ok",
            AttemptOutcome::SimError => "sim_error",
            AttemptOutcome::InvalidMapping => "invalid_mapping",
            AttemptOutcome::Panic => "panic",
            AttemptOutcome::Timeout => "timeout",
        }
    }

    fn classify(result: &JobResult) -> AttemptOutcome {
        match result {
            Ok(_) => AttemptOutcome::Ok,
            Err(JobError::Sim(_)) => AttemptOutcome::SimError,
            Err(JobError::InvalidMapping(_)) => AttemptOutcome::InvalidMapping,
            Err(JobError::Panicked(_)) => AttemptOutcome::Panic,
            Err(JobError::TimedOut(_)) => AttemptOutcome::Timeout,
        }
    }
}

/// One attempt's timing and classification, surfaced by the traced
/// execution path. Offsets are relative to the start of the dispatch
/// (the first attempt's `start_offset` is ~zero; later attempts start
/// after earlier attempts plus any backoff sleeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// When the attempt started, measured from dispatch start.
    pub start_offset: Duration,
    /// How long the attempt ran (for a timeout: the watchdog budget,
    /// since the wedged thread itself is abandoned unmeasured).
    pub dur: Duration,
}

/// How hard the runtime fights transient failures before giving up.
///
/// The default policy is maximally conservative — one attempt, no
/// backoff, no watchdog — so a plain [`crate::Runtime::new`] behaves
/// exactly like a runtime without supervision: every job executes once
/// and deterministic counters stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (minimum 1; 1
    /// disables retries entirely).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles after every further
    /// transient failure.
    pub backoff: Duration,
    /// Per-attempt wall-clock budget. `None` disables the watchdog and
    /// runs attempts inline on the worker thread.
    pub timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying transient failures up to `max_attempts` total
    /// attempts with doubling backoff starting at `backoff`.
    #[must_use]
    pub fn retrying(max_attempts: u32, backoff: Duration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff,
            ..RetryPolicy::default()
        }
    }

    /// The same policy with a per-attempt timeout watchdog.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Runs one job under the policy: attempts are executed (and counted in
/// `metrics`) until one succeeds, fails deterministically, or the
/// attempt budget runs out.
pub(crate) fn execute_supervised(
    job: &SimJob,
    policy: &RetryPolicy,
    metrics: &RuntimeMetrics,
) -> JobResult {
    execute_traced(job, policy, metrics, &mut None)
}

/// [`execute_supervised`], additionally appending one [`AttemptRecord`]
/// per attempt to `attempts` when it is `Some` (the untraced path pays
/// for no allocation and no clock reads beyond what it always did).
pub(crate) fn execute_traced(
    job: &SimJob,
    policy: &RetryPolicy,
    metrics: &RuntimeMetrics,
    attempts: &mut Option<Vec<AttemptRecord>>,
) -> JobResult {
    let epoch = attempts.as_ref().map(|_| Instant::now());
    let budget = policy.max_attempts.max(1);
    let mut delay = policy.backoff;
    let mut result = traced_attempt(job, policy, metrics, epoch, attempts);
    for _ in 1..budget {
        match &result {
            Err(error) if error.is_transient() => {
                metrics.record_retry();
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                result = traced_attempt(job, policy, metrics, epoch, attempts);
            }
            _ => break,
        }
    }
    result
}

fn traced_attempt(
    job: &SimJob,
    policy: &RetryPolicy,
    metrics: &RuntimeMetrics,
    epoch: Option<Instant>,
    attempts: &mut Option<Vec<AttemptRecord>>,
) -> JobResult {
    let start_offset = epoch.map(|e| e.elapsed());
    let result = run_attempt(job, policy, metrics);
    if let (Some(records), Some(epoch), Some(start_offset)) =
        (attempts.as_mut(), epoch, start_offset)
    {
        records.push(AttemptRecord {
            outcome: AttemptOutcome::classify(&result),
            start_offset,
            dur: epoch.elapsed().saturating_sub(start_offset),
        });
    }
    result
}

fn run_attempt(job: &SimJob, policy: &RetryPolicy, metrics: &RuntimeMetrics) -> JobResult {
    let result = match policy.timeout {
        Some(limit) => run_with_timeout(job, limit),
        None => crate::pool::run_isolated(job),
    };
    if matches!(result, Err(JobError::TimedOut(_))) {
        metrics.record_timeout();
    }
    metrics.record_executed(result.is_err());
    result
}

/// Runs one attempt on a disposable thread so the deadline can be
/// enforced from outside. A wedged attempt is *abandoned*: joining it
/// would re-inherit the hang, so the thread is left to finish (or spin)
/// on its own and its eventual result is dropped with the channel.
fn run_with_timeout(job: &SimJob, limit: Duration) -> JobResult {
    let (done_tx, done_rx) = mpsc::channel();
    let label = job.label();
    let job = job.clone();
    std::thread::Builder::new()
        .name("maeri-attempt".to_owned())
        .spawn(move || {
            let _ = done_tx.send(crate::pool::run_isolated(&job));
        })
        .expect("failed to spawn supervised attempt thread");
    match done_rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(_) => Err(JobError::TimedOut(format!(
            "{label} exceeded the {limit:?} per-attempt budget"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_one_bare_attempt() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.backoff, Duration::ZERO);
        assert_eq!(policy.timeout, None);
    }

    #[test]
    fn deterministic_errors_consume_one_attempt() {
        let metrics = RuntimeMetrics::new();
        let policy = RetryPolicy::retrying(5, Duration::ZERO);
        // Channel tile larger than the channel count: statically
        // rejected by the pre-flight verifier.
        let job = SimJob::sparse_conv(
            maeri::MaeriConfig::paper_64(),
            maeri_dnn::ConvLayer::new("k", 3, 8, 8, 4, 3, 3, 1, 1),
            0.0,
            99,
            1,
        );
        let result = execute_supervised(&job, &policy, &metrics);
        assert!(matches!(result, Err(JobError::InvalidMapping(_))));
        let snap = metrics.snapshot();
        assert_eq!(snap.executed, 1, "deterministic errors must not retry");
        assert_eq!(snap.retries, 0);
    }

    #[test]
    fn transient_failures_exhaust_the_attempt_budget() {
        let metrics = RuntimeMetrics::new();
        let policy = RetryPolicy::retrying(3, Duration::from_millis(1));
        let result = execute_supervised(&SimJob::poison("flaky"), &policy, &metrics);
        assert!(matches!(result, Err(JobError::Panicked(_))));
        let snap = metrics.snapshot();
        assert_eq!(snap.executed, 3);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.failed, 3);
    }

    #[test]
    fn wedged_attempt_is_abandoned_as_timed_out() {
        let metrics = RuntimeMetrics::new();
        let policy = RetryPolicy::default().with_timeout(Duration::from_millis(40));
        let result = execute_supervised(&SimJob::wedge(5_000), &policy, &metrics);
        assert!(matches!(result, Err(JobError::TimedOut(_))));
        assert_eq!(metrics.snapshot().timeouts, 1);
    }

    #[test]
    fn traced_execution_classifies_every_attempt() {
        let metrics = RuntimeMetrics::new();
        let policy = RetryPolicy::retrying(3, Duration::from_millis(1));
        let mut attempts = Some(Vec::new());
        let result = execute_traced(&SimJob::poison("flaky"), &policy, &metrics, &mut attempts);
        assert!(matches!(result, Err(JobError::Panicked(_))));
        let records = attempts.unwrap();
        assert_eq!(records.len(), 3, "one record per attempt");
        assert!(records.iter().all(|r| r.outcome == AttemptOutcome::Panic));
        // Attempts are ordered and non-overlapping within the dispatch:
        // each starts at or after the previous one ended.
        for pair in records.windows(2) {
            assert!(pair[1].start_offset >= pair[0].start_offset + pair[0].dur);
        }
        // The untraced path reports the identical result.
        let bare = execute_supervised(&SimJob::poison("flaky"), &policy, &metrics);
        assert_eq!(
            AttemptOutcome::classify(&bare),
            AttemptOutcome::Panic,
            "classification is pure over the result"
        );
        let healthy = execute_supervised(&SimJob::health_check(), &policy, &metrics);
        assert_eq!(AttemptOutcome::classify(&healthy), AttemptOutcome::Ok);
    }

    #[test]
    fn attempt_outcome_names_are_stable() {
        let all = [
            AttemptOutcome::Ok,
            AttemptOutcome::SimError,
            AttemptOutcome::InvalidMapping,
            AttemptOutcome::Panic,
            AttemptOutcome::Timeout,
        ];
        let names: Vec<&str> = all.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            ["ok", "sim_error", "invalid_mapping", "panic", "timeout"]
        );
    }

    #[test]
    fn healthy_jobs_pass_straight_through_the_watchdog() {
        let metrics = RuntimeMetrics::new();
        let policy = RetryPolicy::retrying(3, Duration::ZERO).with_timeout(Duration::from_secs(5));
        let result = execute_supervised(&SimJob::health_check(), &policy, &metrics);
        assert!(result.is_ok());
        let snap = metrics.snapshot();
        assert_eq!(snap.executed, 1);
        assert_eq!(snap.retries, 0);
        assert_eq!(snap.timeouts, 0);
    }
}
