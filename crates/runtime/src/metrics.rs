//! Lightweight runtime metrics: counters plus per-phase wall times.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use maeri_telemetry::json::JsonValue;

/// Wall-clock accounting for one named batch (a "phase": e.g. one
/// figure's sweep inside `regen_all`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase label, as passed to [`crate::Runtime::run_phase`].
    pub name: String,
    /// Jobs submitted in the phase (including ones served from cache).
    pub jobs: usize,
    /// Jobs answered from the result cache or deduplicated in-batch.
    pub cache_hits: usize,
    /// Wall time from submission to full assembly.
    pub wall: Duration,
}

/// Point-in-time copy of the runtime's counters, safe to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs handed to the runtime (cache hits included).
    pub submitted: u64,
    /// Jobs actually executed on a worker.
    pub executed: u64,
    /// Executed jobs that returned an error (sim rejection or panic).
    pub failed: u64,
    /// Jobs answered without executing (cache or in-batch dedup).
    pub cache_hits: u64,
    /// Extra attempts spent re-running transiently-failed jobs.
    pub retries: u64,
    /// Attempts abandoned by the per-job timeout watchdog.
    pub timeouts: u64,
    /// Highest number of jobs simultaneously in flight on the queue.
    pub queue_high_water: usize,
    /// Freshly-executed jobs that carried fabric telemetry.
    pub telemetry_runs: u64,
    /// Total trace events those telemetry runs recorded.
    pub telemetry_events: u64,
    /// Freshly-executed mapping-space searches.
    pub searches: u64,
    /// Candidates those searches enumerated.
    pub search_candidates: u64,
    /// Enumerated candidates pruned as infeasible or duplicate shapes.
    pub search_pruned: u64,
    /// The subset of pruned candidates rejected by the static verifier
    /// before any analytic scoring ran (see `maeri-verify`).
    pub search_statically_rejected: u64,
    /// Frontier members validated with an exact cycle trace.
    pub search_validated: u64,
    /// Searches whose frontier was trace-validated (rank checkable).
    pub search_rank_checks: u64,
    /// Rank checks where analytic and exact ranking picked the same
    /// winner.
    pub search_rank_agreements: u64,
    /// Per-phase wall-time log, in submission order.
    pub phases: Vec<PhaseStats>,
}

impl MetricsSnapshot {
    /// Total wall time across all recorded phases.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Renders the snapshot as an aligned plain-text report (used by
    /// the `regen_all` summary).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("runtime metrics\n");
        let _ = writeln!(
            out,
            "  jobs: {} submitted, {} executed, {} failed, {} cache hits",
            self.submitted, self.executed, self.failed, self.cache_hits
        );
        if self.retries > 0 || self.timeouts > 0 {
            let _ = writeln!(
                out,
                "  hardening: {} retries, {} timeouts",
                self.retries, self.timeouts
            );
        }
        let _ = writeln!(
            out,
            "  queue high-water: {} in flight",
            self.queue_high_water
        );
        if self.telemetry_runs > 0 {
            let _ = writeln!(
                out,
                "  telemetry: {} instrumented runs, {} trace events",
                self.telemetry_runs, self.telemetry_events
            );
        }
        if self.searches > 0 {
            let _ = writeln!(
                out,
                "  search: {} searches, {} candidates ({} pruned, {} statically rejected, {} validated), rank agreement {}/{}",
                self.searches,
                self.search_candidates,
                self.search_pruned,
                self.search_statically_rejected,
                self.search_validated,
                self.search_rank_agreements,
                self.search_rank_checks
            );
        }
        if !self.phases.is_empty() {
            out.push_str("  phases:\n");
            let width = self.phases.iter().map(|p| p.name.len()).max().unwrap_or(0);
            for phase in &self.phases {
                let _ = writeln!(
                    out,
                    "    {:width$}  {:3} jobs  {:3} cached  {:8.2?}",
                    phase.name,
                    phase.jobs,
                    phase.cache_hits,
                    phase.wall,
                    width = width
                );
            }
            let _ = writeln!(out, "  total wall: {:.2?}", self.total_wall());
        }
        out
    }

    /// The snapshot as a JSON document (used by `regen_all --json`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                JsonValue::object()
                    .with("name", JsonValue::Str(phase.name.clone()))
                    .with("jobs", JsonValue::UInt(phase.jobs as u64))
                    .with("cache_hits", JsonValue::UInt(phase.cache_hits as u64))
                    .with("wall_us", JsonValue::UInt(phase.wall.as_micros() as u64))
            })
            .collect();
        JsonValue::object()
            .with("submitted", JsonValue::UInt(self.submitted))
            .with("executed", JsonValue::UInt(self.executed))
            .with("failed", JsonValue::UInt(self.failed))
            .with("cache_hits", JsonValue::UInt(self.cache_hits))
            .with("retries", JsonValue::UInt(self.retries))
            .with("timeouts", JsonValue::UInt(self.timeouts))
            .with(
                "queue_high_water",
                JsonValue::UInt(self.queue_high_water as u64),
            )
            .with("telemetry_runs", JsonValue::UInt(self.telemetry_runs))
            .with("telemetry_events", JsonValue::UInt(self.telemetry_events))
            .with("searches", JsonValue::UInt(self.searches))
            .with("search_candidates", JsonValue::UInt(self.search_candidates))
            .with("search_pruned", JsonValue::UInt(self.search_pruned))
            .with(
                "search_statically_rejected",
                JsonValue::UInt(self.search_statically_rejected),
            )
            .with("search_validated", JsonValue::UInt(self.search_validated))
            .with(
                "search_rank_checks",
                JsonValue::UInt(self.search_rank_checks),
            )
            .with(
                "search_rank_agreements",
                JsonValue::UInt(self.search_rank_agreements),
            )
            .with(
                "total_wall_us",
                JsonValue::UInt(self.total_wall().as_micros() as u64),
            )
            .with("phases", JsonValue::Array(phases))
    }
}

/// Shared counters updated by the runtime and its workers.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    submitted: AtomicU64,
    executed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    telemetry_runs: AtomicU64,
    telemetry_events: AtomicU64,
    searches: AtomicU64,
    search_candidates: AtomicU64,
    search_pruned: AtomicU64,
    search_statically_rejected: AtomicU64,
    search_validated: AtomicU64,
    search_rank_checks: AtomicU64,
    search_rank_agreements: AtomicU64,
    in_flight: AtomicUsize,
    queue_high_water: AtomicUsize,
    phases: Mutex<Vec<PhaseStats>>,
}

impl RuntimeMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_submitted(&self, count: usize) {
        self.submitted.fetch_add(count as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_executed(&self, failed: bool) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_cache_hits(&self, count: usize) {
        self.cache_hits.fetch_add(count as u64, Ordering::Relaxed);
    }

    /// Counts one extra attempt spent on a transiently-failed job.
    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one attempt abandoned by the timeout watchdog.
    pub(crate) fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one freshly-executed telemetry run and its trace events.
    pub(crate) fn record_telemetry(&self, events: u64) {
        self.telemetry_runs.fetch_add(1, Ordering::Relaxed);
        self.telemetry_events.fetch_add(events, Ordering::Relaxed);
    }

    /// Counts one freshly-executed mapping search and its per-search
    /// counters (cache hits are deliberately not re-counted, like
    /// telemetry).
    pub(crate) fn record_search(&self, counters: &maeri_mapspace::SearchCounters) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.search_candidates
            .fetch_add(counters.enumerated, Ordering::Relaxed);
        self.search_pruned
            .fetch_add(counters.pruned, Ordering::Relaxed);
        self.search_statically_rejected
            .fetch_add(counters.statically_rejected, Ordering::Relaxed);
        self.search_validated
            .fetch_add(counters.validated, Ordering::Relaxed);
        if let Some(agreed) = counters.rank_agreement {
            self.search_rank_checks.fetch_add(1, Ordering::Relaxed);
            if agreed {
                self.search_rank_agreements.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Marks one job entering the queue and updates the high-water mark.
    pub(crate) fn job_enqueued(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Marks one job leaving a worker.
    pub(crate) fn job_drained(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn record_phase(&self, phase: PhaseStats) {
        self.phases
            .lock()
            .expect("metrics phase log poisoned")
            .push(phase);
    }

    /// Takes a consistent-enough snapshot for reporting. Counters are
    /// relaxed atomics; exact cross-counter consistency is only
    /// guaranteed while no batch is in flight.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            telemetry_runs: self.telemetry_runs.load(Ordering::Relaxed),
            telemetry_events: self.telemetry_events.load(Ordering::Relaxed),
            searches: self.searches.load(Ordering::Relaxed),
            search_candidates: self.search_candidates.load(Ordering::Relaxed),
            search_pruned: self.search_pruned.load(Ordering::Relaxed),
            search_statically_rejected: self.search_statically_rejected.load(Ordering::Relaxed),
            search_validated: self.search_validated.load(Ordering::Relaxed),
            search_rank_checks: self.search_rank_checks.load(Ordering::Relaxed),
            search_rank_agreements: self.search_rank_agreements.load(Ordering::Relaxed),
            phases: self
                .phases
                .lock()
                .expect("metrics phase log poisoned")
                .clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submitted(5);
        metrics.record_cache_hits(2);
        metrics.record_executed(false);
        metrics.record_executed(true);
        let snap = metrics.snapshot();
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.executed, 2);
        assert_eq!(snap.failed, 1);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let metrics = RuntimeMetrics::new();
        metrics.job_enqueued();
        metrics.job_enqueued();
        metrics.job_enqueued();
        metrics.job_drained();
        metrics.job_drained();
        assert_eq!(metrics.snapshot().queue_high_water, 3);
    }

    #[test]
    fn render_mentions_every_phase() {
        let metrics = RuntimeMetrics::new();
        metrics.record_phase(PhaseStats {
            name: "figure12".into(),
            jobs: 30,
            cache_hits: 0,
            wall: Duration::from_millis(12),
        });
        metrics.record_phase(PhaseStats {
            name: "headline".into(),
            jobs: 30,
            cache_hits: 30,
            wall: Duration::from_millis(1),
        });
        let text = metrics.snapshot().render();
        assert!(text.contains("figure12"));
        assert!(text.contains("headline"));
        assert!(text.contains("total wall"));
    }

    #[test]
    fn telemetry_line_appears_only_with_instrumented_runs() {
        let metrics = RuntimeMetrics::new();
        assert!(!metrics.snapshot().render().contains("telemetry"));
        metrics.record_telemetry(120);
        metrics.record_telemetry(80);
        let snap = metrics.snapshot();
        assert_eq!(snap.telemetry_runs, 2);
        assert_eq!(snap.telemetry_events, 200);
        assert!(snap
            .render()
            .contains("telemetry: 2 instrumented runs, 200 trace events"));
    }

    #[test]
    fn snapshot_json_is_valid_and_complete() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submitted(3);
        metrics.record_executed(false);
        metrics.record_telemetry(42);
        metrics.record_phase(PhaseStats {
            name: "fig\"12\"".into(), // exercises string escaping
            jobs: 3,
            cache_hits: 1,
            wall: Duration::from_millis(7),
        });
        let text = metrics.snapshot().to_json().render();
        maeri_telemetry::json::validate(&text).expect("snapshot JSON must parse");
        assert!(text.contains("\"telemetry_events\":42"));
        assert!(text.contains("\"phases\""));
        assert!(text.contains("\\\"12\\\""));
    }

    #[test]
    fn hardening_line_appears_only_when_something_happened() {
        let metrics = RuntimeMetrics::new();
        assert!(!metrics.snapshot().render().contains("hardening"));
        metrics.record_retry();
        metrics.record_timeout();
        let snap = metrics.snapshot();
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.timeouts, 1);
        assert!(snap.render().contains("hardening: 1 retries, 1 timeouts"));
    }
}
