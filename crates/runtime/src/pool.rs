//! The worker pool: `std::thread` workers behind a bounded job queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::job::SimJob;
use crate::metrics::RuntimeMetrics;
use crate::output::{JobError, JobResult};
use crate::supervise::RetryPolicy;

/// One unit of queued work: the job plus the ticket that routes its
/// result back to the submitting batch.
struct Task {
    ticket: u64,
    job: SimJob,
    reply: Sender<(u64, JobResult)>,
}

/// A fixed-size pool of worker threads consuming a bounded job queue.
///
/// * **Bounded queue** — submission blocks once `queue_depth` tasks are
///   waiting, so a huge batch cannot balloon memory.
/// * **Panic isolation** — each job runs under `catch_unwind`; a panic
///   becomes [`JobError::Panicked`] and the worker keeps serving.
/// * **Supervision** — each job runs under the pool's [`RetryPolicy`]:
///   transient failures are retried with backoff and wedged attempts
///   are abandoned as [`JobError::TimedOut`] instead of hanging the
///   worker (see [`crate::supervise`]).
/// * **Graceful shutdown** — dropping the pool closes the queue, lets
///   every in-flight job finish, and joins all workers.
pub(crate) struct WorkerPool {
    queue: Option<SyncSender<Task>>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
}

impl WorkerPool {
    /// Spawns `num_workers` workers (minimum 1) sharing a queue of at
    /// most `queue_depth` waiting tasks.
    pub(crate) fn new(
        num_workers: usize,
        queue_depth: usize,
        metrics: &Arc<RuntimeMetrics>,
        policy: RetryPolicy,
    ) -> Self {
        let num_workers = num_workers.max(1);
        let (queue, task_rx) = sync_channel::<Task>(queue_depth.max(1));
        let task_rx = Arc::new(Mutex::new(task_rx));
        let workers = (0..num_workers)
            .map(|index| {
                let task_rx = Arc::clone(&task_rx);
                let metrics = Arc::clone(metrics);
                std::thread::Builder::new()
                    .name(format!("maeri-worker-{index}"))
                    .spawn(move || worker_loop(&task_rx, &metrics, policy))
                    .expect("failed to spawn simulation worker")
            })
            .collect();
        WorkerPool {
            queue: Some(queue),
            workers,
            num_workers,
        }
    }

    /// Number of worker threads.
    pub(crate) fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Enqueues one job. Blocks while the queue is full; the reply
    /// `(ticket, result)` arrives on `reply` when a worker finishes.
    pub(crate) fn submit(&self, ticket: u64, job: SimJob, reply: Sender<(u64, JobResult)>) {
        self.queue
            .as_ref()
            .expect("worker pool already shut down")
            .send(Task { ticket, job, reply })
            .expect("all simulation workers exited");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal: workers drain what
        // is left, see the disconnect, and return.
        self.queue.take();
        for worker in self.workers.drain(..) {
            // A worker that somehow panicked outside catch_unwind has
            // nothing left to deliver; ignore its poisoned handle.
            let _ = worker.join();
        }
    }
}

fn worker_loop(task_rx: &Mutex<Receiver<Task>>, metrics: &RuntimeMetrics, policy: RetryPolicy) {
    loop {
        // Hold the lock only to dequeue, never while executing.
        let task = match task_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(Task { ticket, job, reply }) = task else {
            return; // queue closed: graceful shutdown
        };
        // The supervisor records per-attempt executed/failed counts.
        let result = crate::supervise::execute_supervised(&job, &policy, metrics);
        metrics.job_drained();
        // The batch may have been abandoned (receiver dropped); that is
        // not the worker's problem.
        let _ = reply.send((ticket, result));
    }
}

/// Executes one job, converting a panic into a failed result.
pub(crate) fn run_isolated(job: &SimJob) -> JobResult {
    match catch_unwind(AssertUnwindSafe(|| job.execute())) {
        Ok(result) => result,
        Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn pool(workers: usize) -> (WorkerPool, Arc<RuntimeMetrics>) {
        let metrics = Arc::new(RuntimeMetrics::new());
        (
            WorkerPool::new(workers, 8, &metrics, RetryPolicy::default()),
            metrics,
        )
    }

    #[test]
    fn replies_carry_the_submission_ticket() {
        let (pool, metrics) = pool(2);
        let (reply_tx, reply_rx) = channel();
        for ticket in 0..4 {
            metrics.job_enqueued();
            pool.submit(ticket, SimJob::health_check(), reply_tx.clone());
        }
        drop(reply_tx);
        let mut tickets: Vec<u64> = reply_rx.iter().map(|(t, _)| t).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, vec![0, 1, 2, 3]);
        assert_eq!(metrics.snapshot().executed, 4);
    }

    #[test]
    fn panicking_job_fails_without_killing_workers() {
        let (pool, metrics) = pool(1);
        let (reply_tx, reply_rx) = channel();
        metrics.job_enqueued();
        pool.submit(0, SimJob::poison("deliberate"), reply_tx.clone());
        metrics.job_enqueued();
        pool.submit(1, SimJob::health_check(), reply_tx.clone());
        drop(reply_tx);
        let mut results: Vec<(u64, JobResult)> = reply_rx.iter().collect();
        results.sort_by_key(|(t, _)| *t);
        assert!(matches!(
            &results[0].1,
            Err(JobError::Panicked(message)) if message == "deliberate"
        ));
        assert!(results[1].1.is_ok(), "worker died after a panic");
        assert_eq!(metrics.snapshot().failed, 1);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let (pool, metrics) = pool(0);
        assert_eq!(pool.num_workers(), 1);
        let (reply_tx, reply_rx) = channel();
        metrics.job_enqueued();
        pool.submit(7, SimJob::health_check(), reply_tx);
        assert_eq!(reply_rx.recv().unwrap().0, 7);
    }

    #[test]
    fn drop_joins_all_workers() {
        let (pool, metrics) = pool(4);
        let (reply_tx, reply_rx) = channel();
        for ticket in 0..16 {
            metrics.job_enqueued();
            pool.submit(ticket, SimJob::health_check(), reply_tx.clone());
        }
        drop(reply_tx);
        drop(pool); // must not hang or panic
        assert_eq!(reply_rx.iter().count(), 16);
    }
}
