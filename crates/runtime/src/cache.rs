//! Deterministic in-memory result cache keyed by job content.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::job::JobKey;
use crate::output::JobResult;

/// Point-in-time cache counters, exposed so layers above the runtime
/// (`maeri-serve`) can aggregate hit rates without reaching into the
/// cache internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a stored result.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`None` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Memoizes completed [`JobResult`]s by [`JobKey`].
///
/// The key is the job's full canonical encoding, so a hit is guaranteed
/// to be the result of an identical request — there is no hash-collision
/// risk. Because jobs are pure, serving a cached result is
/// indistinguishable from re-running the job, which keeps cached batches
/// bit-identical to cold ones.
///
/// Deterministic failures are cached too: an unmappable point stays
/// unmappable, and re-deriving the error wastes a worker slot.
/// *Transient* failures — panics and timeouts, see
/// [`JobError::is_transient`](crate::JobError::is_transient) — are the
/// exception: they describe one execution (out of stack, a saturated
/// machine), not the job, so they are re-attempted on the next request.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<BTreeMap<JobKey, JobResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the result for a job key.
    #[must_use]
    pub fn get(&self, key: &JobKey) -> Option<JobResult> {
        let found = self
            .entries
            .lock()
            .expect("result cache poisoned")
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// A point-in-time copy of the cache's hit/miss counters and size.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Records a completed result. Transient failures (panics and
    /// timeouts) are not retained — they may not be deterministic
    /// properties of the job — all other results are. Returns whether
    /// the entry was stored.
    pub fn insert(&self, key: JobKey, result: JobResult) -> bool {
        if matches!(&result, Err(error) if error.is_transient()) {
            return false;
        }
        self.entries
            .lock()
            .expect("result cache poisoned")
            .insert(key, result);
        true
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("result cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached result.
    pub fn clear(&self) {
        self.entries.lock().expect("result cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{JobError, SimOutput};
    use crate::SimJob;

    fn key_of(job: &SimJob) -> JobKey {
        job.key()
    }

    #[test]
    fn round_trips_success_and_sim_error() {
        let cache = ResultCache::new();
        let ok_key = key_of(&SimJob::health_check());
        let ok = SimJob::health_check().execute();
        assert!(cache.insert(ok_key.clone(), ok.clone()));
        assert_eq!(cache.get(&ok_key), Some(ok));

        let err_key = key_of(&SimJob::poison("x"));
        let err: crate::JobResult = Err(JobError::Sim("unmappable".into()));
        assert!(cache.insert(err_key.clone(), err.clone()));
        assert_eq!(cache.get(&err_key), Some(err));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn panics_are_not_cached() {
        let cache = ResultCache::new();
        let key = key_of(&SimJob::poison("boom"));
        assert!(!cache.insert(key.clone(), Err(JobError::Panicked("boom".into()))));
        assert_eq!(cache.get(&key), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn timeouts_are_not_cached() {
        let cache = ResultCache::new();
        let key = key_of(&SimJob::wedge(10));
        assert!(!cache.insert(key.clone(), Err(JobError::TimedOut("wedged".into()))));
        assert_eq!(cache.get(&key), None);
        // A deterministic rejection under the same key is still kept.
        assert!(cache.insert(key.clone(), Err(JobError::Sim("unmappable".into()))));
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = ResultCache::new();
        let job = SimJob::health_check();
        cache.insert(job.key(), job.execute());
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_count_hits_misses_and_entries() {
        let cache = ResultCache::new();
        let job = SimJob::health_check();
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.stats().hit_rate(), None);
        assert!(cache.get(&job.key()).is_none()); // miss
        cache.insert(job.key(), job.execute());
        assert!(cache.get(&job.key()).is_some()); // hit
        assert!(cache.get(&job.key()).is_some()); // hit
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        let rate = stats.hit_rate().unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_is_identical_to_recompute() {
        let cache = ResultCache::new();
        let job = SimJob::health_check();
        cache.insert(job.key(), job.execute());
        let hit = cache.get(&job.key()).unwrap();
        let fresh = job.execute();
        match (&hit, &fresh) {
            (Ok(SimOutput::Run(a)), Ok(SimOutput::Run(b))) => assert_eq!(a, b),
            other => panic!("unexpected results: {other:?}"),
        }
    }
}
