//! Job outcomes: successful simulation outputs and isolated failures.

use std::fmt;

use maeri::analytic::AnalyticResult;
use maeri::cycle_sim::TraceStats;
use maeri::RunStats;
use maeri_mapspace::SearchResult;
use maeri_sim::SimError;
use maeri_telemetry::FabricTelemetry;

/// A clocked cycle-trace plus the fabric telemetry captured while it
/// ran: per-level link utilization, multiplier busy fraction, stall
/// fractions, ART configuration, and the VN-latency histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRun {
    /// The trace statistics of the run (cycles, waves, stalls).
    pub trace: TraceStats,
    /// The fabric-level telemetry reduced from the probe stream.
    pub fabric: FabricTelemetry,
}

/// What one completed [`crate::SimJob`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOutput {
    /// Cost-model statistics from a mapper or baseline run.
    Run(RunStats),
    /// A closed-form analytic walk-through (Figure 17 style).
    Analytic(AnalyticResult),
    /// A clocked cycle-trace of one mapping iteration.
    Trace(TraceStats),
    /// A clocked cycle-trace with fabric telemetry attached (boxed:
    /// telemetry carries a histogram and per-kind event counts, much
    /// larger than the other outputs).
    Telemetry(Box<TelemetryRun>),
    /// A mapping-space search result (boxed: carries a whole validated
    /// frontier of candidates).
    Search(Box<SearchResult>),
}

impl SimOutput {
    /// The run statistics, if this output is a mapper/baseline run.
    #[must_use]
    pub fn run_stats(&self) -> Option<&RunStats> {
        match self {
            SimOutput::Run(stats) => Some(stats),
            _ => None,
        }
    }

    /// Unwraps run statistics.
    ///
    /// # Panics
    ///
    /// Panics if the output is not a [`SimOutput::Run`].
    #[must_use]
    pub fn into_run_stats(self) -> RunStats {
        match self {
            SimOutput::Run(stats) => stats,
            other => panic!("expected run statistics, got {}", other.kind()),
        }
    }

    /// The analytic result, if this output is a walk-through.
    #[must_use]
    pub fn analytic(&self) -> Option<&AnalyticResult> {
        match self {
            SimOutput::Analytic(result) => Some(result),
            _ => None,
        }
    }

    /// Unwraps an analytic result.
    ///
    /// # Panics
    ///
    /// Panics if the output is not a [`SimOutput::Analytic`].
    #[must_use]
    pub fn into_analytic(self) -> AnalyticResult {
        match self {
            SimOutput::Analytic(result) => result,
            other => panic!("expected analytic result, got {}", other.kind()),
        }
    }

    /// The trace statistics, if this output is a cycle-trace (with or
    /// without telemetry attached).
    #[must_use]
    pub fn trace_stats(&self) -> Option<&TraceStats> {
        match self {
            SimOutput::Trace(stats) => Some(stats),
            SimOutput::Telemetry(run) => Some(&run.trace),
            _ => None,
        }
    }

    /// The telemetry run, if this output carries fabric telemetry.
    #[must_use]
    pub fn telemetry(&self) -> Option<&TelemetryRun> {
        match self {
            SimOutput::Telemetry(run) => Some(run),
            _ => None,
        }
    }

    /// The search result, if this output came from a mapping search.
    #[must_use]
    pub fn search(&self) -> Option<&SearchResult> {
        match self {
            SimOutput::Search(result) => Some(result),
            _ => None,
        }
    }

    /// Unwraps a search result.
    ///
    /// # Panics
    ///
    /// Panics if the output is not a [`SimOutput::Search`].
    #[must_use]
    pub fn into_search(self) -> SearchResult {
        match self {
            SimOutput::Search(result) => *result,
            other => panic!("expected search result, got {}", other.kind()),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            SimOutput::Run(_) => "run statistics",
            SimOutput::Analytic(_) => "analytic result",
            SimOutput::Trace(_) => "trace statistics",
            SimOutput::Telemetry(_) => "telemetry run",
            SimOutput::Search(_) => "search result",
        }
    }

    /// A canonical, field-stable text encoding.
    ///
    /// Two outputs are equal exactly when their canonical texts are
    /// byte-identical, which is what the determinism tests compare
    /// between single-worker and multi-worker batches.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        fn extras(stats: &maeri_sim::Stats) -> String {
            // Stats iterates in name order, so this is stable.
            stats
                .iter()
                .map(|(name, value)| format!("{name}={value}"))
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            SimOutput::Run(run) => format!(
                "run label={} units={} cycles={} macs={} sram_reads={} sram_writes={} extra=[{}]",
                run.label,
                run.compute_units,
                run.cycles.as_u64(),
                run.macs,
                run.sram_reads,
                run.sram_writes,
                extras(&run.extra),
            ),
            SimOutput::Analytic(result) => format!(
                "analytic design={} cycles={} sram_reads={} steps={}",
                result.design,
                result.cycles,
                result.sram_reads,
                result.breakdown.len(),
            ),
            SimOutput::Trace(trace) => format!(
                "trace cycles={} waves={} busy={} dist_stalls={} coll_stalls={} extra=[{}]",
                trace.cycles.as_u64(),
                trace.waves_completed,
                trace.busy_cycles,
                trace.distribution_stall_cycles,
                trace.collection_stall_cycles,
                extras(&trace.extra),
            ),
            SimOutput::Telemetry(run) => format!(
                "telemetry trace=[{}] fabric=[{}]",
                SimOutput::Trace(run.trace.clone()).canonical_text(),
                // The fabric rendering is multi-line for human output;
                // flatten it so the canonical form stays one line.
                run.fabric.canonical_text().trim_end().replace('\n', "; "),
            ),
            SimOutput::Search(result) => format!(
                // Like telemetry: flatten the multi-line rendering so
                // the canonical form stays one line.
                "search [{}]",
                result.canonical_text().trim_end().replace('\n', "; "),
            ),
        }
    }
}

/// Why a job failed. Failures are values, not crashes: one bad point in
/// a sweep never takes down the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The simulator rejected the request (unmappable, bad config, ...).
    Sim(String),
    /// The static verifier (`maeri-verify`) proved the mapping illegal
    /// before execution; the message is the structured violation with
    /// its counterexample. Deterministic, like [`JobError::Sim`].
    InvalidMapping(String),
    /// The job panicked; the worker caught it and kept serving.
    Panicked(String),
    /// The job exceeded its per-attempt wall-clock budget; the watchdog
    /// abandoned it and the worker kept serving.
    TimedOut(String),
}

impl JobError {
    /// Whether the failure is *transient* — a property of this
    /// execution (environment, scheduling, stack exhaustion) rather
    /// than of the job description.
    ///
    /// Transient failures are worth retrying and must never be cached;
    /// a deterministic [`JobError::Sim`] rejection would only reproduce
    /// itself, so it is cached and never retried.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            JobError::Sim(_) | JobError::InvalidMapping(_) => false,
            JobError::Panicked(_) | JobError::TimedOut(_) => true,
        }
    }

    /// A canonical, field-stable text encoding (see
    /// [`SimOutput::canonical_text`]).
    #[must_use]
    pub fn canonical_text(&self) -> String {
        match self {
            JobError::Sim(msg) => format!("error sim={msg}"),
            JobError::InvalidMapping(msg) => format!("error invalid_mapping={msg}"),
            JobError::Panicked(msg) => format!("error panic={msg}"),
            JobError::TimedOut(msg) => format!("error timeout={msg}"),
        }
    }
}

impl From<SimError> for JobError {
    fn from(err: SimError) -> Self {
        JobError::Sim(err.to_string())
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Sim(msg) => write!(f, "simulation error: {msg}"),
            JobError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::TimedOut(msg) => write!(f, "job timed out: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Outcome of one job: output or isolated failure.
pub type JobResult = Result<SimOutput, JobError>;

/// Canonical text for a whole result (success or failure).
#[must_use]
pub fn canonical_result_text(result: &JobResult) -> String {
    match result {
        Ok(output) => output.canonical_text(),
        Err(error) => error.canonical_text(),
    }
}
