//! Runtime hardening: a wedged job must surface as `TimedOut` instead
//! of hanging the pool, transient failures must retry within a bounded
//! budget, and no transient result may ever be served from the cache.

use std::time::{Duration, Instant};

use maeri_runtime::{JobError, RetryPolicy, Runtime, SimJob};

#[test]
fn wedged_job_times_out_and_the_batch_still_completes() {
    let policy = RetryPolicy::default().with_timeout(Duration::from_millis(50));
    let runtime = Runtime::with_policy(2, policy);
    // Distinct stall times: identical jobs would deduplicate in-batch.
    let jobs = vec![
        SimJob::wedge(10_000),
        SimJob::health_check(),
        SimJob::wedge(9_000),
    ];
    let start = Instant::now();
    let results = runtime.run_batch(&jobs);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the batch must not wait for the wedged jobs to finish"
    );
    assert!(matches!(&results[0], Err(JobError::TimedOut(_))));
    assert!(results[1].is_ok());
    assert!(matches!(&results[2], Err(JobError::TimedOut(_))));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.timeouts, 2);
    assert_eq!(snapshot.failed, 2);
}

#[test]
fn transient_failures_retry_up_to_the_attempt_budget() {
    let policy = RetryPolicy::retrying(3, Duration::from_millis(1));
    let runtime = Runtime::with_policy(1, policy);
    let result = runtime.run_one(&SimJob::poison("always"));
    assert!(matches!(result, Err(JobError::Panicked(_))));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.executed, 3, "three attempts, no more");
    assert_eq!(snapshot.retries, 2, "two of them were retries");
    assert_eq!(snapshot.failed, 3);
}

#[test]
fn backoff_doubles_between_retries() {
    let policy = RetryPolicy::retrying(3, Duration::from_millis(30));
    let runtime = Runtime::with_policy(1, policy);
    let start = Instant::now();
    let _ = runtime.run_one(&SimJob::poison("flaky"));
    // 30ms before the first retry, 60ms before the second.
    assert!(
        start.elapsed() >= Duration::from_millis(90),
        "expected >= 90ms of backoff, got {:?}",
        start.elapsed()
    );
}

#[test]
fn timed_out_attempts_are_retried_and_counted() {
    let policy = RetryPolicy::retrying(2, Duration::ZERO).with_timeout(Duration::from_millis(40));
    let runtime = Runtime::with_policy(1, policy);
    let result = runtime.run_one(&SimJob::wedge(10_000));
    assert!(matches!(result, Err(JobError::TimedOut(_))));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.executed, 2);
    assert_eq!(snapshot.retries, 1);
    assert_eq!(snapshot.timeouts, 2);
}

#[test]
fn timed_out_results_are_never_served_from_the_cache() {
    let policy = RetryPolicy::default().with_timeout(Duration::from_millis(40));
    let runtime = Runtime::with_policy(1, policy);
    let job = SimJob::wedge(10_000);
    assert!(matches!(runtime.run_one(&job), Err(JobError::TimedOut(_))));
    assert!(matches!(runtime.run_one(&job), Err(JobError::TimedOut(_))));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.executed, 2, "each request re-attempted the job");
    assert_eq!(snapshot.cache_hits, 0, "a timeout must never be cached");
}

#[test]
fn deterministic_sim_errors_are_cached_not_retried() {
    let policy = RetryPolicy::retrying(5, Duration::from_millis(1));
    let runtime = Runtime::with_policy(1, policy);
    // Channel tile larger than the channel count: rejected up front by
    // the static verifier — deterministically, so never retried.
    let job = SimJob::sparse_conv(
        maeri::MaeriConfig::paper_64(),
        maeri_dnn::ConvLayer::new("k", 3, 8, 8, 4, 3, 3, 1, 1),
        0.0,
        99,
        1,
    );
    assert!(matches!(
        runtime.run_one(&job),
        Err(JobError::InvalidMapping(_))
    ));
    assert!(matches!(
        runtime.run_one(&job),
        Err(JobError::InvalidMapping(_))
    ));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.executed, 1, "deterministic rejections never retry");
    assert_eq!(snapshot.retries, 0);
    assert_eq!(snapshot.cache_hits, 1, "and the rejection is cached");
}

#[test]
fn default_policy_keeps_the_legacy_single_attempt_contract() {
    let runtime = Runtime::new(1);
    assert_eq!(runtime.policy(), RetryPolicy::default());
    let _ = runtime.run_one(&SimJob::poison("once"));
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.executed, 1);
    assert_eq!(snapshot.retries, 0);
    assert_eq!(snapshot.timeouts, 0);
}
