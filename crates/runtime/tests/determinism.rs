//! Integration tests for the runtime's core contract: a batch run with
//! one worker is byte-identical to the same batch with many workers,
//! and one panicking job never poisons the rest.

use maeri::cycle_sim::LaneSpec;
use maeri::{MaeriConfig, VnPolicy};
use maeri_dnn::{zoo, FcLayer};
use maeri_runtime::{canonical_result_text, JobError, Runtime, SimJob};

/// A mixed CONV / FC / sparse / fused / baseline / trace batch — one of
/// every fidelity and design the runtime schedules.
fn mixed_jobs() -> Vec<SimJob> {
    let cfg = MaeriConfig::paper_64();
    let quarter = MaeriConfig::builder(64)
        .distribution_bandwidth(2)
        .collection_bandwidth(2)
        .build()
        .expect("valid configuration");
    // Mid-sized stand-in for VGG conv: big enough to fold and to make
    // sparsity interesting, small enough to keep the suite quick.
    let conv = maeri_dnn::ConvLayer::new("conv_mid", 32, 14, 14, 32, 3, 3, 1, 1);
    let small = maeri_dnn::ConvLayer::new("small", 8, 14, 14, 16, 3, 3, 1, 1);
    let alexnet = zoo::alexnet();
    let chain: Vec<maeri_dnn::ConvLayer> = alexnet
        .conv_layers()
        .iter()
        .take(3)
        .map(|l| (*l).clone())
        .collect();
    vec![
        SimJob::dense_conv(cfg, conv.clone(), VnPolicy::Auto),
        SimJob::dense_conv(cfg, small.clone(), VnPolicy::FullFilter),
        SimJob::dense_conv(quarter, small.clone(), VnPolicy::ChannelsPerVn(2)),
        SimJob::sparse_conv(cfg, conv.clone(), 0.3, 3, 42),
        SimJob::sparse_conv(cfg, conv.clone(), 0.5, 3, 42),
        SimJob::sparse_conv(cfg, conv.clone(), 0.5, 3, 7),
        SimJob::fused_chain(cfg, chain.clone()),
        SimJob::ClusterFusedChain {
            clusters: 4,
            cluster_size: 16,
            bus_bandwidth: 8,
            layers: chain,
        },
        SimJob::Fc {
            cfg,
            layer: FcLayer::new("fc6", 9216, 4096),
        },
        SimJob::systolic_conv(8, 8, 8, conv.clone()),
        SimJob::row_stationary_conv(8, 8, 8, conv.clone()),
        SimJob::ClusterSparseConv {
            clusters: 4,
            cluster_size: 16,
            bus_bandwidth: 8,
            layer: conv.clone(),
            zero_fraction: 0.4,
            channel_tile: 3,
            mask_seed: 42,
        },
        SimJob::AnalyticSystolic {
            layer: conv.clone(),
            rows: 256,
            cols: 256,
        },
        SimJob::AnalyticMaeri {
            layer: conv.clone(),
            num_ms: 64,
            dist_bw: 8,
        },
        SimJob::ConvTrace {
            cfg,
            lanes: vec![
                LaneSpec {
                    vn_size: 9,
                    fresh_inputs_per_step: 3,
                };
                7
            ],
            steps: 25,
            shared_inputs: 1,
        },
        // An unmappable point: channel tile larger than the channels.
        SimJob::sparse_conv(cfg, small, 0.0, 99, 1),
    ]
}

/// Serializes a whole batch result to one canonical string.
fn canonical_batch(results: &[maeri_runtime::JobResult]) -> String {
    results
        .iter()
        .map(canonical_result_text)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn one_worker_and_many_workers_are_byte_identical() {
    let jobs = mixed_jobs();
    let serial = canonical_batch(&Runtime::new(1).run_batch(&jobs));
    for workers in [2, 4, 8] {
        let parallel = canonical_batch(&Runtime::new(workers).run_batch(&jobs));
        assert_eq!(
            serial, parallel,
            "batch diverged between 1 and {workers} workers"
        );
    }
    // And a warm cache changes nothing either.
    let runtime = Runtime::new(4);
    let cold = canonical_batch(&runtime.run_batch(&jobs));
    let warm = canonical_batch(&runtime.run_batch(&jobs));
    assert_eq!(serial, cold);
    assert_eq!(cold, warm);
    assert_eq!(runtime.metrics().cache_hits, jobs.len() as u64);
}

#[test]
fn panicking_job_yields_job_error_while_the_rest_complete() {
    let runtime = Runtime::new(4);
    let mut jobs = mixed_jobs();
    let poison_index = 3;
    jobs.insert(poison_index, SimJob::poison("injected fault"));
    let results = runtime.run_batch(&jobs);
    assert_eq!(results.len(), jobs.len());
    for (index, result) in results.iter().enumerate() {
        if index == poison_index {
            assert!(
                matches!(result, Err(JobError::Panicked(m)) if m == "injected fault"),
                "poisoned job must fail with its panic message, got {result:?}"
            );
        } else if matches!(
            jobs[index],
            SimJob::SparseConv {
                channel_tile: 99,
                ..
            }
        ) {
            assert!(
                matches!(result, Err(JobError::InvalidMapping(_))),
                "unmappable point must be rejected by the pre-flight verifier, got {result:?}"
            );
        } else {
            assert!(result.is_ok(), "job {index} failed: {result:?}");
        }
    }
    let snapshot = runtime.metrics();
    assert_eq!(snapshot.failed, 2, "one panic + one static rejection");
    assert_eq!(snapshot.submitted, jobs.len() as u64);
}

#[test]
fn panicked_jobs_are_retried_not_cached() {
    let runtime = Runtime::new(2);
    let poison = SimJob::poison("always fails");
    let first = runtime.run_batch(std::slice::from_ref(&poison));
    let second = runtime.run_batch(std::slice::from_ref(&poison));
    assert!(matches!(&first[0], Err(JobError::Panicked(_))));
    assert!(matches!(&second[0], Err(JobError::Panicked(_))));
    // Both attempts executed (no cache hit for panics)...
    assert_eq!(runtime.metrics().executed, 2);
    // ...but deterministic sim errors ARE cached.
    let bad = SimJob::sparse_conv(
        MaeriConfig::paper_64(),
        maeri_dnn::ConvLayer::new("c", 4, 8, 8, 4, 3, 3, 1, 1),
        0.0,
        99,
        1,
    );
    runtime.run_batch(std::slice::from_ref(&bad));
    runtime.run_batch(std::slice::from_ref(&bad));
    assert_eq!(runtime.metrics().cache_hits, 1);
}
