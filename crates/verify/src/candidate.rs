//! Invariant 4 and the pre-score prune gate: static verification of a
//! [`MappingCandidate`] against a layer, without running any mapper.
//!
//! [`verify_mapping`] replays each mapper's *planning* math (knob
//! bounds, folding, VN packing) symbolically, verifies the resulting
//! partition with [`crate::verify_partition_with_faults`], and closes
//! the books with a MAC-conservation ledger: every weight×input pair
//! must be assigned exactly once, and trailing idle switches drop none.
//!
//! [`statically_reject`] is the soundness-critical wrapper the
//! mapping-space search uses as a prune gate: it only rejects
//! candidates the dynamic scoring path would also reject, so pruning
//! before scoring changes no search outcome (pinned by the byte-stable
//! report comparison in CI).

use maeri::art::{pack_vns_into_spans, VnRange};
use maeri::{CandidateKind, ConvMapping, MaeriConfig, MappingCandidate};
use maeri_dnn::{ConvLayer, FcLayer, LstmLayer, WeightMask};
use maeri_sim::util::ceil_div;

use crate::error::VerifyError;
use crate::partition::{verify_partition_with_faults, PartitionReport};

/// The layer a candidate is verified against.
#[derive(Debug, Clone, Copy)]
pub enum VerifyLayer<'a> {
    /// Dense convolution.
    Conv(&'a ConvLayer),
    /// Sparse convolution with its weight mask.
    SparseConv {
        /// The dense layer shape.
        layer: &'a ConvLayer,
        /// Which weights survived pruning.
        mask: &'a WeightMask,
    },
    /// Fully connected.
    Fc(&'a FcLayer),
    /// LSTM cell.
    Lstm(&'a LstmLayer),
}

impl VerifyLayer<'_> {
    fn kind_label(&self) -> &'static str {
        match self {
            VerifyLayer::Conv(_) => "conv",
            VerifyLayer::SparseConv { .. } => "sparse",
            VerifyLayer::Fc(_) => "fc",
            VerifyLayer::Lstm(_) => "lstm",
        }
    }
}

/// What a successful mapping verification proves.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// The verified VN partition of one steady-state iteration (`None`
    /// for sparse layers, whose grouping is re-packed dynamically per
    /// group, and for entirely pruned sparse layers that do no work).
    pub partition: Option<PartitionReport>,
    /// Work units the layer defines (MACs; gate-phase MACs for LSTM).
    pub macs_expected: u64,
    /// Work units the mapping assigns.
    pub macs_assigned: u64,
}

/// Statically verifies a mapping candidate against a layer.
///
/// # Errors
///
/// Returns the first [`VerifyError`] violation: fabric-configuration
/// failures, knob bounds, kind mismatches, partition illegality, or a
/// MAC-conservation mismatch.
pub fn verify_mapping(
    base: &MaeriConfig,
    layer: &VerifyLayer<'_>,
    cand: &MappingCandidate,
) -> Result<MappingReport, VerifyError> {
    let cfg = cand.config(base).map_err(|e| VerifyError::Config {
        message: e.to_string(),
    })?;
    match (layer, cand.kind) {
        (VerifyLayer::Conv(l), CandidateKind::Conv(m)) => verify_conv(&cfg, l, &m),
        (VerifyLayer::SparseConv { layer, mask }, CandidateKind::SparseConv { channel_tile }) => {
            verify_sparse(&cfg, layer, mask, channel_tile)
        }
        (VerifyLayer::Fc(l), CandidateKind::Fc { vn_size }) => {
            let d = l.inputs;
            let report = verify_folded_vector(&cfg, d, vn_size, "vn_size")?;
            mac_ledger_folded(d, report.1, l.outputs as u64, l.macs(), "fc folding").map(
                |(expected, assigned)| MappingReport {
                    partition: Some(report.0),
                    macs_expected: expected,
                    macs_assigned: assigned,
                },
            )
        }
        (VerifyLayer::Lstm(l), CandidateKind::Lstm { gate_vn_size }) => {
            let d = l.input_dim + l.hidden_dim;
            let report = verify_folded_vector(&cfg, d, gate_vn_size, "gate_vn_size")?;
            mac_ledger_folded(
                d,
                report.1,
                4 * l.hidden_dim as u64,
                l.gate_macs(),
                "lstm gate folding",
            )
            .map(|(expected, assigned)| MappingReport {
                partition: Some(report.0),
                macs_expected: expected,
                macs_assigned: assigned,
            })
        }
        (layer, kind) => Err(VerifyError::KindMismatch {
            candidate: match kind {
                CandidateKind::Conv(_) => "conv",
                CandidateKind::SparseConv { .. } => "sparse",
                CandidateKind::Fc { .. } => "fc",
                CandidateKind::Lstm { .. } => "lstm",
            },
            layer: layer.kind_label(),
        }),
    }
}

/// The mapping-space prune gate: `Some(violation)` only when the
/// dynamic scoring path is guaranteed to reject the candidate too.
///
/// Every check in [`verify_mapping`] mirrors a reject condition of the
/// corresponding mapper (`ConvMapper::plan`, `FcMapper::run_with_vn_size`,
/// `LstmMapper::run_with_gate_vn_size`, `SparseConvMapper::run`) or of
/// the ART construction those mappers invoke, so a statically rejected
/// candidate can never have scored.
#[must_use]
pub fn statically_reject(
    base: &MaeriConfig,
    layer: &VerifyLayer<'_>,
    cand: &MappingCandidate,
) -> Option<VerifyError> {
    verify_mapping(base, layer, cand).err()
}

/// Largest healthy span and total healthy budget, or
/// [`VerifyError::NothingMappable`].
fn span_capacity(spans: &[VnRange]) -> Result<(usize, usize), VerifyError> {
    let cap = spans.iter().map(|s| s.len).max().unwrap_or(0);
    if cap == 0 {
        return Err(VerifyError::NothingMappable);
    }
    Ok((cap, spans.iter().map(|s| s.len).sum()))
}

/// Dense CONV: mirrors `ConvMapper::plan` (Section 4.2 with folding
/// from Section 4.8), then verifies the packed partition and the
/// channel-tiling MAC ledger.
fn verify_conv(
    cfg: &MaeriConfig,
    layer: &ConvLayer,
    m: &ConvMapping,
) -> Result<MappingReport, VerifyError> {
    let spans = cfg.healthy_spans();
    let (cap, budget) = span_capacity(&spans)?;
    if m.channel_tile == 0 || m.channel_tile > layer.in_channels {
        return Err(VerifyError::KnobOutOfRange {
            knob: "channel_tile",
            value: m.channel_tile,
            min: 1,
            max: layer.in_channels,
        });
    }
    if m.max_vns == 0 {
        return Err(VerifyError::KnobOutOfRange {
            knob: "max_vns",
            value: 0,
            min: 1,
            max: cfg.num_mult_switches(),
        });
    }
    let rs = layer.kernel_h * layer.kernel_w;
    let vn_weights = rs * m.channel_tile;
    let subfold = ceil_div(vn_weights as u64, cap as u64) as usize;
    let vn_size = ceil_div(vn_weights as u64, subfold as u64) as usize;
    let want = (budget / vn_size).min(m.max_vns).max(1);
    let (ranges, _) = pack_vns_into_spans(&spans, &vec![vn_size; want]);
    let plan = cfg.fault_plan();
    let partition = verify_partition_with_faults(cfg, plan.as_ref(), &ranges)?;

    // Invariant 4 ledger, in three closures over the same tiling:
    // (a) the `segments` channel tiles cover every input channel once,
    let segments = ceil_div(layer.in_channels as u64, m.channel_tile as u64) as usize;
    let mut covered = 0usize;
    for seg in 0..segments {
        covered += m
            .channel_tile
            .min(layer.in_channels.saturating_sub(seg * m.channel_tile));
    }
    let per_position = (rs * covered) as u64;
    let positions = layer.out_channels as u64 * layer.out_h() as u64 * layer.out_w() as u64;
    let assigned = positions * per_position;
    let expected = layer.macs();
    if covered != layer.in_channels || assigned != expected {
        return Err(VerifyError::MacMismatch {
            expected,
            assigned,
            unit: "conv channel tiling",
        });
    }
    // (b) the subfold passes cover every weight of one padded tile once
    // (trailing idle switches pad the last pass but drop nothing),
    let mut piece_sum = 0usize;
    for pass in 0..subfold {
        piece_sum += vn_size.min(vn_weights.saturating_sub(pass * vn_size));
    }
    if piece_sum != vn_weights {
        return Err(VerifyError::MacMismatch {
            expected: vn_weights as u64,
            assigned: piece_sum as u64,
            unit: "conv subfold pieces",
        });
    }
    // (c) the iteration count covers every work unit at least once.
    let row_units = layer.out_channels as u64 * layer.out_h() as u64 * (segments * subfold) as u64;
    let lanes = ranges.len() as u64;
    let iterations = ceil_div(row_units, lanes);
    if iterations * lanes < row_units {
        return Err(VerifyError::MacMismatch {
            expected: row_units,
            assigned: iterations * lanes,
            unit: "conv work units",
        });
    }
    Ok(MappingReport {
        partition: Some(partition),
        macs_expected: expected,
        macs_assigned: assigned,
    })
}

/// Sparse CONV: mirrors `SparseConvMapper::run`'s reject conditions
/// (channel-tile bounds, fully faulty fabric) and checks the
/// fold-piece MAC ledger over the survivor VN sizes. The per-group
/// packing itself is re-formed dynamically group by group, so no
/// single partition exists to verify here.
fn verify_sparse(
    cfg: &MaeriConfig,
    layer: &ConvLayer,
    mask: &WeightMask,
    ct: usize,
) -> Result<MappingReport, VerifyError> {
    if ct == 0 || ct > layer.in_channels {
        return Err(VerifyError::KnobOutOfRange {
            knob: "channel_tile",
            value: ct,
            min: 1,
            max: layer.in_channels,
        });
    }
    // Survivor VN sizes: nonzero weights per (segment, filter) slice.
    let rs = layer.kernel_h * layer.kernel_w;
    let segments = ceil_div(layer.in_channels as u64, ct as u64) as usize;
    let mut sizes: Vec<usize> = Vec::with_capacity(layer.out_channels * segments);
    for seg in 0..segments {
        for k in 0..layer.out_channels {
            let c_lo = seg * ct;
            let c_hi = ((seg + 1) * ct).min(layer.in_channels);
            let mut nonzeros = 0usize;
            for c in c_lo..c_hi {
                for j in 0..rs {
                    if mask.is_kept(k, c * rs + j) {
                        nonzeros += 1;
                    }
                }
            }
            if nonzeros > 0 {
                sizes.push(nonzeros);
            }
        }
    }
    let positions = (layer.out_h() * layer.out_w()) as u64;
    let kept: u64 = sizes.iter().map(|&s| s as u64).sum();
    let expected = kept * positions;
    if sizes.is_empty() {
        // An entirely pruned layer performs no work and always maps.
        return Ok(MappingReport {
            partition: None,
            macs_expected: 0,
            macs_assigned: 0,
        });
    }
    let spans = cfg.healthy_spans();
    let (cap, _budget) = span_capacity(&spans)?;
    // Oversized survivor VNs fold into <= cap pieces; the ledger checks
    // the pieces repartition the survivors exactly.
    let mut piece_total = 0u64;
    for size in &sizes {
        let folds = ceil_div(*size as u64, cap as u64) as usize;
        let base = size / folds;
        let mut rem = size % folds;
        for _ in 0..folds {
            let extra = usize::from(rem > 0);
            rem = rem.saturating_sub(1);
            piece_total += (base + extra) as u64;
        }
    }
    let assigned = piece_total * positions;
    if assigned != expected {
        return Err(VerifyError::MacMismatch {
            expected,
            assigned,
            unit: "sparse fold pieces",
        });
    }
    Ok(MappingReport {
        partition: None,
        macs_expected: expected,
        macs_assigned: assigned,
    })
}

/// FC/LSTM-gate shared path: mirrors the folded-vector packing of
/// `FcMapper::run_folded` / `LstmMapper::gate_phase_folded`, verifying
/// the packed partition. Returns the report plus the fold count.
fn verify_folded_vector(
    cfg: &MaeriConfig,
    d: usize,
    vn_size: usize,
    knob: &'static str,
) -> Result<(PartitionReport, u64), VerifyError> {
    let spans = cfg.healthy_spans();
    let (cap, budget) = span_capacity(&spans)?;
    let max = d.min(cap);
    if vn_size == 0 || vn_size > max {
        return Err(VerifyError::KnobOutOfRange {
            knob,
            value: vn_size,
            min: 1,
            max,
        });
    }
    let fold = ceil_div(d as u64, vn_size as u64);
    let packed = ceil_div(d as u64, fold) as usize;
    let want = (budget / packed).max(1);
    let (ranges, _) = pack_vns_into_spans(&spans, &vec![packed; want]);
    let plan = cfg.fault_plan();
    let partition = verify_partition_with_faults(cfg, plan.as_ref(), &ranges)?;
    Ok((partition, fold))
}

/// Invariant 4 for folded dot products: `fold` segments of
/// `ceil(d / fold)` switches cover all `d` inputs exactly once, for
/// each of the `outputs` neurons.
fn mac_ledger_folded(
    d: usize,
    fold: u64,
    outputs: u64,
    expected: u64,
    unit: &'static str,
) -> Result<(u64, u64), VerifyError> {
    let packed = ceil_div(d as u64, fold) as usize;
    let mut covered = 0usize;
    for seg in 0..fold as usize {
        covered += packed.min(d.saturating_sub(seg * packed));
    }
    let assigned = outputs * covered as u64;
    if covered != d || assigned != expected {
        return Err(VerifyError::MacMismatch {
            expected,
            assigned,
            unit,
        });
    }
    Ok((expected, assigned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri::{LoopOrder, SparseConvMapper};
    use maeri_sim::SimRng;

    fn conv_layer() -> ConvLayer {
        ConvLayer::new("c", 3, 8, 8, 4, 3, 3, 1, 1)
    }

    #[test]
    fn valid_conv_candidate_verifies_and_conserves_macs() {
        let base = MaeriConfig::paper_64();
        let layer = conv_layer();
        let cand = MappingCandidate::with_base_bandwidth(
            CandidateKind::Conv(ConvMapping {
                channel_tile: 3,
                max_vns: 64,
                loop_order: LoopOrder::FilterMajor,
            }),
            &base,
        );
        let report = verify_mapping(&base, &VerifyLayer::Conv(&layer), &cand).unwrap();
        assert_eq!(report.macs_assigned, layer.macs());
        assert_eq!(report.macs_expected, layer.macs());
        assert!(report.partition.is_some());
    }

    #[test]
    fn oversized_channel_tile_rejected_with_bounds() {
        let base = MaeriConfig::paper_64();
        let layer = conv_layer();
        let cand = MappingCandidate::with_base_bandwidth(
            CandidateKind::SparseConv { channel_tile: 99 },
            &base,
        );
        let mask = WeightMask::generate(&layer, 0.5, &mut SimRng::seed(1));
        let err = statically_reject(
            &base,
            &VerifyLayer::SparseConv {
                layer: &layer,
                mask: &mask,
            },
            &cand,
        )
        .unwrap();
        assert_eq!(
            err,
            VerifyError::KnobOutOfRange {
                knob: "channel_tile",
                value: 99,
                min: 1,
                max: 3
            }
        );
        // The dynamic mapper rejects it too (gate soundness).
        assert!(SparseConvMapper::new(base).run(&layer, &mask, 99).is_err());
    }

    #[test]
    fn fc_vn_size_bounds_follow_healthy_capacity() {
        use maeri::fault::FaultSpec;
        let base = MaeriConfig::builder(64)
            .faults(FaultSpec::new(5).dead_multipliers(500))
            .build()
            .unwrap();
        let cap = base.fault_plan().unwrap().max_span_len();
        assert!(cap < 64);
        let fc = FcLayer::new("f", 256, 16);
        let reject =
            MappingCandidate::with_base_bandwidth(CandidateKind::Fc { vn_size: cap + 1 }, &base);
        let err = statically_reject(&base, &VerifyLayer::Fc(&fc), &reject).unwrap();
        assert_eq!(
            err,
            VerifyError::KnobOutOfRange {
                knob: "vn_size",
                value: cap + 1,
                min: 1,
                max: cap
            }
        );
        let accept =
            MappingCandidate::with_base_bandwidth(CandidateKind::Fc { vn_size: cap }, &base);
        assert!(statically_reject(&base, &VerifyLayer::Fc(&fc), &accept).is_none());
    }

    #[test]
    fn kind_mismatch_is_structured() {
        let base = MaeriConfig::paper_64();
        let fc = FcLayer::new("f", 16, 4);
        let cand =
            MappingCandidate::with_base_bandwidth(CandidateKind::Lstm { gate_vn_size: 4 }, &base);
        let err = verify_mapping(&base, &VerifyLayer::Fc(&fc), &cand).unwrap_err();
        assert_eq!(
            err,
            VerifyError::KindMismatch {
                candidate: "lstm",
                layer: "fc"
            }
        );
    }

    #[test]
    fn bad_bandwidth_pair_is_a_config_error() {
        let base = MaeriConfig::paper_64();
        let layer = conv_layer();
        let cand = MappingCandidate {
            kind: CandidateKind::Conv(ConvMapping {
                channel_tile: 1,
                max_vns: 64,
                loop_order: LoopOrder::FilterMajor,
            }),
            dist_bandwidth: 3,
            collect_bandwidth: 8,
        };
        let err = verify_mapping(&base, &VerifyLayer::Conv(&layer), &cand).unwrap_err();
        assert!(matches!(err, VerifyError::Config { .. }), "{err}");
    }
}
