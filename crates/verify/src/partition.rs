//! Invariants 1–3 and 5: static verification of a VN partition.
//!
//! [`verify_reduction`] runs the same level-by-level walk as the ART's
//! VN-construction algorithm (`maeri::art::ArtConfig::build_with_faults`,
//! Section 4.1 of the paper) — but purely symbolically: it claims links
//! and adder ports without ever materializing an operation list or
//! clocking a cycle, and reports the first conflict as a structured
//! [`VerifyError`] with the conflicting VN pair. A differential test
//! (`tests/differential.rs`) pins the two walks to each other: for every
//! partition on small fabrics and seeded samples at 64 leaves, the
//! verifier accepts exactly when the dynamic construction accepts, and
//! both sides agree on forwarding-link count, active adders, and
//! throughput slowdown.

use std::collections::{BTreeMap, BTreeSet};

use maeri::art::VnRange;
use maeri::fault::FaultPlan;
use maeri::MaeriConfig;
use maeri_noc::topology::NodeId;
use maeri_noc::{BinaryTree, ChubbyTree};

use crate::error::{Network, VerifyError};

/// Worst-case per-cycle demand on one link of a level, against the
/// chubby capacity of that level. Level 0 is the root port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLoad {
    /// Tree level (0 = root port, `levels - 1` = leaf up-links).
    pub level: usize,
    /// Worst per-cycle word demand on one link of the level.
    pub load: u64,
    /// Words per cycle one link of the level carries.
    pub capacity: u64,
}

impl LevelLoad {
    /// Cycles one steady-state round needs on this level's worst link.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.load.div_ceil(self.capacity.max(1))
    }
}

/// What a successful reduction-forest verification proves about a VN
/// partition (invariants 1, 2, 5, plus the collection half of 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionReport {
    /// VNs in the partition.
    pub num_vns: usize,
    /// Multiplier leaves covered by VNs.
    pub busy_leaves: usize,
    /// Forwarding links the reduction forest activates.
    pub forwarding_links: usize,
    /// Adder switches performing additions.
    pub active_adders: usize,
    /// Steady-state collection slowdown (`1.0` = non-blocking,
    /// Property 2 of the paper).
    pub collection_slowdown: f64,
    /// Per-level worst link load of the collection network; entry 0 is
    /// the root port (`num_vns` outputs per reduction wave).
    pub collection_loads: Vec<LevelLoad>,
}

/// A [`ReductionReport`] joined by the distribution network's per-level
/// feasibility (the other half of invariant 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// The reduction-forest findings.
    pub reduction: ReductionReport,
    /// Per-level worst link load of the distribution tree; entry 0 is
    /// the root port (all busy leaves fed from the prefetch buffer).
    pub distribution_loads: Vec<LevelLoad>,
}

impl PartitionReport {
    /// Invariant 3 in strict form: every level of both networks must
    /// sustain full rate.
    ///
    /// The collection side demands slowdown 1.0 — every up-link and the
    /// root port fit their per-wave flows in one cycle. The
    /// distribution side demands the chubby property: no inner level
    /// may be a worse bottleneck than the root port (Section 3.1.1's
    /// argument for chubby tapering).
    ///
    /// This is deliberately *not* part of [`verify_partition`]'s
    /// accept/reject decision: a thin-root fabric (e.g. the 0.25x
    /// configuration of Figure 13) is legal and merely slower, and the
    /// dynamic checks accept it too. Callers wanting the paper's
    /// non-blocking guarantee opt in here.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::BandwidthInfeasible`] naming the first
    /// bottleneck level.
    pub fn check_bandwidth(&self) -> Result<(), VerifyError> {
        for ll in &self.reduction.collection_loads {
            if ll.load > ll.capacity {
                return Err(VerifyError::BandwidthInfeasible {
                    network: Network::Collection,
                    level: ll.level,
                    load: ll.load,
                    capacity: ll.capacity,
                });
            }
        }
        let root_rounds = self.distribution_loads.first().map_or(1, LevelLoad::rounds);
        for ll in self.distribution_loads.iter().skip(1) {
            if ll.rounds() > root_rounds {
                return Err(VerifyError::BandwidthInfeasible {
                    network: Network::Distribution,
                    level: ll.level,
                    load: ll.load,
                    capacity: ll.capacity,
                });
            }
        }
        Ok(())
    }
}

/// Mirror of the ART's per-adder port bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct NodeUse {
    addends: u8,
    passes: u8,
    lateral_in: bool,
    lateral_out: bool,
}

/// The symbolic walk state over one partition.
struct Walker<'a> {
    tree: BinaryTree,
    faults: Option<&'a FaultPlan>,
    node_uses: Vec<NodeUse>,
    /// VNs that contributed addends to each adder, for counterexamples.
    claimants: Vec<Vec<usize>>,
    /// First VN to claim each forwarding link (undirected key).
    fl_claims: BTreeMap<(NodeId, NodeId), usize>,
    forwarding_links: usize,
    /// Flow count per up-link, keyed by the child node of the link.
    edge_loads: BTreeMap<NodeId, u32>,
}

/// Statically verifies a VN partition against a fabric configuration:
/// invariants 1, 2, 5 decide acceptance; the report carries the
/// invariant-3 level loads for both networks.
///
/// Faults are materialized from the configuration's own
/// [`maeri::fault::FaultSpec`], matching what every mapper simulates.
///
/// # Errors
///
/// Returns the first [`VerifyError`] violation with its counterexample.
pub fn verify_partition(
    cfg: &MaeriConfig,
    vns: &[VnRange],
) -> Result<PartitionReport, VerifyError> {
    let plan = cfg.fault_plan();
    verify_partition_with_faults(cfg, plan.as_ref(), vns)
}

/// Like [`verify_partition`], but over an explicit (possibly absent)
/// fault plan instead of the configuration's own spec.
///
/// # Errors
///
/// Returns the first [`VerifyError`] violation with its counterexample.
pub fn verify_partition_with_faults(
    cfg: &MaeriConfig,
    faults: Option<&FaultPlan>,
    vns: &[VnRange],
) -> Result<PartitionReport, VerifyError> {
    let reduction = verify_reduction(&cfg.collection_chubby(), faults, vns)?;
    let distribution_loads = distribution_loads(&cfg.distribution_chubby(), vns);
    Ok(PartitionReport {
        reduction,
        distribution_loads,
    })
}

/// Verifies the reduction forest a VN partition induces on the ART —
/// the exact static counterpart of
/// [`maeri::art::ArtConfig::build_with_faults`].
///
/// # Errors
///
/// Returns the first [`VerifyError`] violation with its counterexample.
pub fn verify_reduction(
    collection: &ChubbyTree,
    faults: Option<&FaultPlan>,
    vns: &[VnRange],
) -> Result<ReductionReport, VerifyError> {
    let tree = *collection.tree();
    let leaves = tree.num_leaves();

    // Invariants 1 and 5: in range, pairwise disjoint, on healthy
    // leaves. Same sorted sweep as the dynamic construction.
    let mut sorted: Vec<(usize, &VnRange)> = vns.iter().enumerate().collect();
    sorted.sort_by_key(|(_, r)| r.start);
    let mut prev: Option<(usize, usize)> = None;
    for (idx, range) in &sorted {
        if range.end() > leaves {
            return Err(VerifyError::VnOutOfRange {
                vn: *idx,
                start: range.start,
                end: range.end(),
                leaves,
            });
        }
        if let Some((prev_vn, prev_end)) = prev {
            if range.start < prev_end {
                return Err(VerifyError::VnOverlap {
                    first_vn: prev_vn,
                    second_vn: *idx,
                    leaf: range.start,
                });
            }
        }
        prev = Some((*idx, range.end()));
        if let Some(plan) = faults {
            if let Some(dead) = (range.start..range.end()).find(|&l| plan.is_leaf_dead(l)) {
                return Err(VerifyError::DeadLeaf {
                    vn: *idx,
                    leaf: dead,
                });
            }
        }
    }

    // Invariant 2: the symbolic walk claims links and adder ports in
    // the same order the dynamic construction does.
    let mut walker = Walker {
        tree,
        faults,
        node_uses: vec![NodeUse::default(); tree.num_internal()],
        claimants: vec![Vec::new(); tree.num_internal()],
        fl_claims: BTreeMap::new(),
        forwarding_links: 0,
        edge_loads: BTreeMap::new(),
    };
    for (vn_idx, range) in vns.iter().enumerate() {
        walker.walk_vn(vn_idx, range)?;
    }
    for (node, usage) in walker.node_uses.iter().enumerate() {
        if usage.addends > 3 {
            let claimants = &walker.claimants[node];
            let first_vn = claimants.first().copied().unwrap_or(0);
            let second_vn = claimants
                .iter()
                .rev()
                .copied()
                .find(|&vn| vn != first_vn)
                .unwrap_or(first_vn);
            return Err(VerifyError::AdderOverloaded {
                level: tree.level_of(node),
                node,
                addends: usage.addends as usize,
                first_vn,
                second_vn,
            });
        }
    }

    // Invariant 3, collection half: worst flow per level vs. the
    // chubby capacity profile.
    let mut worst_by_level: BTreeMap<usize, u64> = BTreeMap::new();
    for (&child, &load) in &walker.edge_loads {
        let level = tree.level_of(child);
        let entry = worst_by_level.entry(level).or_insert(0);
        *entry = (*entry).max(u64::from(load));
    }
    let mut collection_loads = vec![LevelLoad {
        level: 0,
        load: vns.len() as u64,
        capacity: collection.root_bandwidth() as u64,
    }];
    let mut collection_slowdown: f64 = 1.0;
    for level in 1..tree.levels() {
        let load = worst_by_level.get(&level).copied().unwrap_or(0);
        let capacity = collection.link_bandwidth(level) as u64;
        collection_loads.push(LevelLoad {
            level,
            load,
            capacity,
        });
    }
    for ll in &collection_loads {
        collection_slowdown = collection_slowdown.max(ll.load as f64 / ll.capacity as f64);
    }

    Ok(ReductionReport {
        num_vns: vns.len(),
        busy_leaves: vns.iter().map(|r| r.len).sum(),
        forwarding_links: walker.forwarding_links,
        active_adders: walker.node_uses.iter().filter(|u| u.addends > 0).count(),
        collection_slowdown,
        collection_loads,
    })
}

/// Per-level worst busy-leaf demand of the distribution tree: a link at
/// level `l` must feed every busy leaf below it, one word per leaf per
/// full-rate step.
fn distribution_loads(distribution: &ChubbyTree, vns: &[VnRange]) -> Vec<LevelLoad> {
    let tree = distribution.tree();
    let leaves = tree.num_leaves();
    // Prefix sums of busy leaves for O(1) subtree queries.
    let mut busy_prefix = vec![0u64; leaves + 1];
    let mut busy = vec![false; leaves];
    for range in vns {
        for slot in &mut busy[range.start..range.end().min(leaves)] {
            *slot = true;
        }
    }
    for (i, &b) in busy.iter().enumerate() {
        busy_prefix[i + 1] = busy_prefix[i] + u64::from(b);
    }
    let total_busy = busy_prefix[leaves];
    let mut loads = vec![LevelLoad {
        level: 0,
        load: total_busy,
        capacity: distribution.root_bandwidth() as u64,
    }];
    for level in 1..tree.levels() {
        let mut worst = 0u64;
        for pos in 0..tree.nodes_at_level(level) {
            let (lo, hi) = tree.leaf_span(tree.node_at(level, pos));
            worst = worst.max(busy_prefix[hi + 1] - busy_prefix[lo]);
        }
        loads.push(LevelLoad {
            level,
            load: worst,
            capacity: distribution.link_bandwidth(level) as u64,
        });
    }
    loads
}

impl Walker<'_> {
    /// Adds `count` addends for `vn` at `node`, remembering the
    /// claimant for counterexamples.
    fn add_addends(&mut self, node: NodeId, count: u8, vn: usize) {
        self.node_uses[node].addends += count;
        self.claimants[node].push(vn);
    }

    /// The static counterpart of `ArtConfig::construct_vn`.
    fn walk_vn(&mut self, vn: usize, range: &VnRange) -> Result<(), VerifyError> {
        let leaf_level = self.tree.levels() - 1;
        let mut frags: Vec<usize> = (range.start..range.end()).collect();
        let mut level = leaf_level;
        while frags.len() > 1 {
            if level < leaf_level {
                frags = self.resolve_laterals(vn, level, frags)?;
            }
            let mut next: Vec<usize> = Vec::with_capacity(frags.len() / 2 + 1);
            let mut i = 0;
            while i < frags.len() {
                let pos = frags[i];
                let sibling = pos ^ 1;
                let parent_pos = pos / 2;
                let parent = self.tree.node_at(level - 1, parent_pos);
                if i + 1 < frags.len() && frags[i + 1] == sibling {
                    let a = self.tree.node_at(level, pos);
                    let b = self.tree.node_at(level, sibling);
                    self.add_addends(parent, 2, vn);
                    *self.edge_loads.entry(a).or_insert(0) += 1;
                    *self.edge_loads.entry(b).or_insert(0) += 1;
                    i += 2;
                } else {
                    let from = self.tree.node_at(level, pos);
                    self.node_uses[parent].passes += 1;
                    *self.edge_loads.entry(from).or_insert(0) += 1;
                    i += 1;
                }
                next.push(parent_pos);
            }
            frags = next;
            level -= 1;
        }
        // Collection climb from the VN output node to the root.
        let mut node = self.tree.node_at(level, frags[0]);
        while let Some(parent) = self.tree.parent(node) {
            *self.edge_loads.entry(node).or_insert(0) += 1;
            self.node_uses[parent].passes += 1;
            node = parent;
        }
        Ok(())
    }

    /// The static counterpart of `ArtConfig::resolve_laterals`: the
    /// Step 1/Step 2 forwarding-link rules of Section 4.1, claiming
    /// links instead of emitting operations.
    fn resolve_laterals(
        &mut self,
        vn: usize,
        level: usize,
        frags: Vec<usize>,
    ) -> Result<Vec<usize>, VerifyError> {
        let present: BTreeSet<usize> = frags.iter().copied().collect();
        let is_lone = |pos: usize| !present.contains(&(pos ^ 1));
        let fl_partner = |pos: usize| -> Option<usize> {
            if pos % 2 == 1 {
                let p = pos + 1;
                (p < self.tree.nodes_at_level(level)).then_some(p)
            } else {
                pos.checked_sub(1)
            }
        };
        let mut removed: BTreeSet<usize> = BTreeSet::new();
        let frag_list = frags.clone();
        for &pos in &frag_list {
            if removed.contains(&pos) || !is_lone(pos) {
                continue;
            }
            let Some(partner) = fl_partner(pos) else {
                continue;
            };
            if !present.contains(&partner) || removed.contains(&partner) {
                continue;
            }
            let boundary = pos.min(partner);
            if self
                .faults
                .is_some_and(|plan| plan.is_fl_dead(level, boundary))
            {
                continue;
            }
            let left_span = frag_list
                .iter()
                .filter(|&&p| p <= boundary && !removed.contains(&p))
                .count();
            let right_span = frag_list
                .iter()
                .filter(|&&p| p > boundary && !removed.contains(&p))
                .count();
            let (from, to) = if (pos < partner && left_span <= right_span)
                || (pos > partner && right_span <= left_span)
            {
                (pos, partner)
            } else {
                continue;
            };
            let from_node = self.tree.node_at(level, from);
            let to_node = self.tree.node_at(level, to);
            if self.node_uses[to_node].addends >= 3
                || self.node_uses[to_node].lateral_in
                || self.node_uses[from_node].lateral_out
            {
                continue;
            }
            let key = (from_node.min(to_node), from_node.max(to_node));
            if let Some(&first_vn) = self.fl_claims.get(&key) {
                return Err(VerifyError::LinkClaimedTwice {
                    level,
                    from: from_node,
                    to: to_node,
                    first_vn,
                    second_vn: vn,
                });
            }
            self.fl_claims.insert(key, vn);
            self.forwarding_links += 1;
            self.node_uses[from_node].lateral_out = true;
            let to_use = &mut self.node_uses[to_node];
            to_use.lateral_in = true;
            if to_use.addends == 0 {
                to_use.addends = 2;
                to_use.passes = to_use.passes.saturating_sub(1);
            } else {
                to_use.addends += 1;
            }
            self.claimants[to_node].push(vn);
            removed.insert(from);
        }
        Ok(frags.into_iter().filter(|p| !removed.contains(p)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri::art::{pack_vns, ArtConfig};

    fn chubby(leaves: usize, bw: usize) -> ChubbyTree {
        ChubbyTree::new(BinaryTree::with_leaves(leaves).unwrap(), bw).unwrap()
    }

    #[test]
    fn figure6_partition_is_non_blocking() {
        let vns = [VnRange::new(0, 5), VnRange::new(5, 5), VnRange::new(10, 5)];
        let report = verify_reduction(&chubby(16, 8), None, &vns).unwrap();
        assert_eq!(report.num_vns, 3);
        assert_eq!(report.busy_leaves, 15);
        assert!(report.forwarding_links > 0);
        assert!((report.collection_slowdown - 1.0).abs() < 1e-12);
        // Agrees with the dynamic construction on every metric.
        let art = ArtConfig::build(chubby(16, 8), &vns).unwrap();
        assert_eq!(report.forwarding_links, art.forwarding_links().len());
        assert_eq!(report.active_adders, art.active_adders());
        assert!((report.collection_slowdown - art.throughput_slowdown()).abs() < 1e-12);
    }

    #[test]
    fn overlap_reports_conflicting_pair() {
        let vns = [VnRange::new(0, 5), VnRange::new(4, 5)];
        let err = verify_reduction(&chubby(16, 8), None, &vns).unwrap_err();
        assert_eq!(
            err,
            VerifyError::VnOverlap {
                first_vn: 0,
                second_vn: 1,
                leaf: 4
            }
        );
    }

    #[test]
    fn out_of_range_reports_bounds() {
        let err = verify_reduction(&chubby(16, 8), None, &[VnRange::new(10, 8)]).unwrap_err();
        assert_eq!(
            err,
            VerifyError::VnOutOfRange {
                vn: 0,
                start: 10,
                end: 18,
                leaves: 16
            }
        );
    }

    #[test]
    fn dead_leaf_reports_vn_and_leaf() {
        use maeri::fault::{FaultPlan, FaultSpec};
        let plan = FaultPlan::materialize(FaultSpec::new(7).dead_multipliers(200), 16);
        let dead = *plan.dead_leaves().iter().next().unwrap();
        let err =
            verify_reduction(&chubby(16, 8), Some(&plan), &[VnRange::new(dead, 1)]).unwrap_err();
        assert_eq!(err, VerifyError::DeadLeaf { vn: 0, leaf: dead });
    }

    #[test]
    fn thin_root_fails_strict_bandwidth_but_verifies() {
        let cfg = MaeriConfig::builder(16)
            .distribution_bandwidth(8)
            .collection_bandwidth(1)
            .build()
            .unwrap();
        let (vns, _) = pack_vns(16, &[2; 8]);
        let report = verify_partition(&cfg, &vns).unwrap();
        assert!(report.reduction.collection_slowdown >= 8.0);
        let err = report.check_bandwidth().unwrap_err();
        assert_eq!(
            err,
            VerifyError::BandwidthInfeasible {
                network: Network::Collection,
                level: 0,
                load: 8,
                capacity: 1
            }
        );
    }

    #[test]
    fn paper_chubby_profile_passes_strict_bandwidth() {
        let cfg = MaeriConfig::paper_64();
        let (vns, _) = pack_vns(64, &[8; 8]);
        let report = verify_partition(&cfg, &vns).unwrap();
        report.check_bandwidth().unwrap();
        // The distribution root feeds all 64 leaves through an 8-wide
        // port; no inner level is a worse bottleneck (chubby property).
        assert_eq!(report.distribution_loads[0].rounds(), 8);
        for ll in &report.distribution_loads {
            assert!(ll.rounds() <= 8, "level {} over-bottlenecked", ll.level);
        }
    }
}
