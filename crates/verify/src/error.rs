//! Structured verification errors carrying minimal counterexamples.
//!
//! A violation is never reported as a bare boolean or prose string: each
//! variant names the level, node ids, and conflicting VN pair (or the
//! offending knob and its bounds) that demonstrate the illegality, so a
//! failed verification is directly actionable and testable.

use std::fmt;

use maeri_noc::topology::NodeId;

/// Which tree network a bandwidth finding refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// The chubby distribution tree (prefetch buffer to multipliers).
    Distribution,
    /// The ART / collection network (multipliers back to the buffer).
    Collection,
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Network::Distribution => f.write_str("distribution"),
            Network::Collection => f.write_str("collection"),
        }
    }
}

/// A statically proven legality violation.
///
/// The variants map onto the five invariants of the paper that
/// `maeri-verify` checks (see DESIGN.md section 11):
///
/// 1. VN contiguity/disjointness over the multiplier leaves
///    ([`VerifyError::VnOutOfRange`], [`VerifyError::VnOverlap`]),
/// 2. ART link exclusivity for the induced reduction forest
///    ([`VerifyError::LinkClaimedTwice`], [`VerifyError::AdderOverloaded`]),
/// 3. per-level bandwidth feasibility ([`VerifyError::BandwidthInfeasible`]),
/// 4. MAC conservation ([`VerifyError::MacMismatch`]),
/// 5. fault consistency ([`VerifyError::DeadLeaf`]).
///
/// Knob/bounds violations that make a candidate unmappable before any
/// partition exists surface as [`VerifyError::KnobOutOfRange`],
/// [`VerifyError::Config`], [`VerifyError::NothingMappable`], or
/// [`VerifyError::KindMismatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Invariant 1: VN `vn` covers leaves `start..end`, which leaves the
    /// `leaves`-wide multiplier array.
    VnOutOfRange {
        /// Index of the offending VN in the supplied partition.
        vn: usize,
        /// First leaf the VN claims.
        start: usize,
        /// One past the last leaf the VN claims.
        end: usize,
        /// Number of multiplier leaves in the fabric.
        leaves: usize,
    },
    /// Invariant 1: two VNs both claim `leaf`.
    VnOverlap {
        /// Index of the lower-starting VN of the conflicting pair.
        first_vn: usize,
        /// Index of the higher-starting VN of the conflicting pair.
        second_vn: usize,
        /// A leaf both VNs cover.
        leaf: usize,
    },
    /// Invariant 5: VN `vn` covers the dead multiplier switch `leaf`.
    DeadLeaf {
        /// Index of the offending VN.
        vn: usize,
        /// The dead leaf it covers.
        leaf: usize,
    },
    /// Invariant 2: the forwarding link between `from` and `to` at
    /// `level` would be claimed by two VNs.
    LinkClaimedTwice {
        /// Tree level of both endpoints.
        level: usize,
        /// Sending node of the second (conflicting) activation.
        from: NodeId,
        /// Receiving node of the second (conflicting) activation.
        to: NodeId,
        /// VN that claimed the link first.
        first_vn: usize,
        /// VN whose claim collides.
        second_vn: usize,
    },
    /// Invariant 2: adder switch `node` would need more than its three
    /// input ports.
    AdderOverloaded {
        /// Tree level of the adder.
        level: usize,
        /// The overloaded adder switch.
        node: NodeId,
        /// Addends demanded of it.
        addends: usize,
        /// First VN contributing addends.
        first_vn: usize,
        /// Last VN contributing addends (distinct from `first_vn`).
        second_vn: usize,
    },
    /// Invariant 3 (strict form): `level` of `network` must move `load`
    /// words per cycle over links of width `capacity`.
    BandwidthInfeasible {
        /// Which tree network is the bottleneck.
        network: Network,
        /// Tree level of the bottleneck link (0 = root port).
        level: usize,
        /// Worst per-cycle word demand on one link of the level.
        load: u64,
        /// Words per cycle the link can carry.
        capacity: u64,
    },
    /// Invariant 4: the mapping assigns `assigned` of the `expected`
    /// units of work (each weight×input pair must be assigned exactly
    /// once; trailing idle switches drop none).
    MacMismatch {
        /// Units the layer defines.
        expected: u64,
        /// Units the mapping assigns.
        assigned: u64,
        /// What is being counted (e.g. `"conv channel tiling"`).
        unit: &'static str,
    },
    /// A mapping knob sits outside its legal range.
    KnobOutOfRange {
        /// The knob's name (e.g. `"channel_tile"`).
        knob: &'static str,
        /// The supplied value.
        value: usize,
        /// Smallest legal value.
        min: usize,
        /// Largest legal value.
        max: usize,
    },
    /// The candidate's fabric parameters fail configuration validation.
    Config {
        /// The builder's validation message.
        message: String,
    },
    /// Every multiplier switch is faulty; no VN can be formed.
    NothingMappable,
    /// The candidate kind does not match the layer kind.
    KindMismatch {
        /// The candidate's kind label.
        candidate: &'static str,
        /// The layer's kind label.
        layer: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::VnOutOfRange {
                vn,
                start,
                end,
                leaves,
            } => write!(
                f,
                "vn {vn} covers leaves {start}..{end}, out of range 0..{leaves}"
            ),
            VerifyError::VnOverlap {
                first_vn,
                second_vn,
                leaf,
            } => write!(f, "vn {first_vn} and vn {second_vn} both cover leaf {leaf}"),
            VerifyError::DeadLeaf { vn, leaf } => {
                write!(f, "vn {vn} covers dead multiplier switch {leaf}")
            }
            VerifyError::LinkClaimedTwice {
                level,
                from,
                to,
                first_vn,
                second_vn,
            } => write!(
                f,
                "forwarding link {from}-{to} at level {level} claimed by vn {first_vn} and vn {second_vn}"
            ),
            VerifyError::AdderOverloaded {
                level,
                node,
                addends,
                first_vn,
                second_vn,
            } => write!(
                f,
                "adder switch {node} at level {level} needs {addends} addends (vn {first_vn} vs vn {second_vn}); 3 is the port budget"
            ),
            VerifyError::BandwidthInfeasible {
                network,
                level,
                load,
                capacity,
            } => write!(
                f,
                "{network} level {level} load {load} out of range 0..={capacity} words/cycle"
            ),
            VerifyError::MacMismatch {
                expected,
                assigned,
                unit,
            } => write!(
                f,
                "{unit} assigns {assigned} of {expected} weight-input pairs"
            ),
            VerifyError::KnobOutOfRange {
                knob,
                value,
                min,
                max,
            } => write!(f, "{knob} {value} out of range {min}..={max}"),
            VerifyError::Config { message } => write!(f, "fabric configuration invalid: {message}"),
            VerifyError::NothingMappable => {
                f.write_str("every multiplier switch is faulty; no virtual neuron can be formed")
            }
            VerifyError::KindMismatch { candidate, layer } => {
                write!(f, "candidate kind {candidate} does not match {layer} layer")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable() {
        let cases: Vec<(VerifyError, &str)> = vec![
            (
                VerifyError::VnOutOfRange {
                    vn: 2,
                    start: 60,
                    end: 68,
                    leaves: 64,
                },
                "vn 2 covers leaves 60..68, out of range 0..64",
            ),
            (
                VerifyError::VnOverlap {
                    first_vn: 0,
                    second_vn: 1,
                    leaf: 4,
                },
                "vn 0 and vn 1 both cover leaf 4",
            ),
            (
                VerifyError::DeadLeaf { vn: 3, leaf: 17 },
                "vn 3 covers dead multiplier switch 17",
            ),
            (
                VerifyError::KnobOutOfRange {
                    knob: "channel_tile",
                    value: 99,
                    min: 1,
                    max: 3,
                },
                "channel_tile 99 out of range 1..=3",
            ),
            (
                VerifyError::BandwidthInfeasible {
                    network: Network::Collection,
                    level: 0,
                    load: 8,
                    capacity: 1,
                },
                "collection level 0 load 8 out of range 0..=1 words/cycle",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }
}
