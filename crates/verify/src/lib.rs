//! Static legality verification for MAERI mappings (`maeri-verify`).
//!
//! MAERI's central claim (Sections 4–5 of the paper) is that the ART's
//! forwarding and chubby links make arbitrary contiguous virtual-neuron
//! reductions *non-blocking*. The simulator checks this dynamically, by
//! clocking a full trace; this crate proves the same legality
//! invariants **statically** — given only a [`maeri::MaeriConfig`], an
//! optional [`maeri::fault::FaultPlan`], and a VN partition or
//! [`maeri::MappingCandidate`], without clocking a single cycle:
//!
//! 1. **VN contiguity** over the multiplier leaves (ranges in bounds,
//!    pairwise disjoint),
//! 2. **ART link exclusivity** for the induced reduction forest across
//!    all levels, including forwarding links and chubby links,
//! 3. **bandwidth feasibility** per level of both the distribution and
//!    the collection network,
//! 4. **MAC conservation** (every weight×input pair assigned exactly
//!    once, none dropped on trailing idle switches),
//! 5. **fault consistency** (no VN cell on a dead multiplier, dead
//!    adder subtree, or severed forwarding link).
//!
//! Violations come back as structured [`VerifyError`] values carrying a
//! minimal counterexample — the level, node ids, and conflicting VN
//! pair — never as a bare boolean.
//!
//! The verifier is wired in three places: `maeri-mapspace` uses
//! [`statically_reject`] as a pre-score prune gate, `maeri-runtime`
//! rejects illegal jobs early with `JobError::InvalidMapping`, and
//! `tests/differential.rs` proves the verifier agrees with the cycle
//! simulator's dynamic checks over exhaustive small fabrics.

#![forbid(unsafe_code)]

pub mod candidate;
pub mod error;
pub mod partition;

pub use candidate::{statically_reject, verify_mapping, MappingReport, VerifyLayer};
pub use error::{Network, VerifyError};
pub use partition::{
    verify_partition, verify_partition_with_faults, verify_reduction, LevelLoad, PartitionReport,
    ReductionReport,
};
