//! Seeded-random mutation tests: start from a known-legal mapping on
//! the paper's 64-multiplier fabric, break exactly one cell (or one
//! knob) at a time, and assert the verifier flags exactly the broken
//! invariant with the correct counterexample fields — never a
//! neighbouring invariant, never a bare rejection.

use maeri::art::{pack_vns, VnRange};
use maeri::fault::{FaultPlan, FaultSpec};
use maeri::mapper::{CandidateKind, ConvMapping, LoopOrder, MappingCandidate};
use maeri::MaeriConfig;
use maeri_dnn::layer::{ConvLayer, FcLayer};
use maeri_sim::SimRng;
use maeri_verify::{verify_mapping, verify_partition, VerifyError, VerifyLayer};

/// A legal mixed-size packing covering all 64 leaves without gaps.
fn legal_partition() -> Vec<VnRange> {
    let (vns, leftover) = pack_vns(64, &[5, 3, 8, 1, 7, 6, 2, 9, 4, 8, 6, 5]);
    assert!(leftover.is_empty());
    assert_eq!(vns.iter().map(|r| r.len).sum::<usize>(), 64);
    vns
}

#[test]
fn baseline_partition_is_legal() {
    let cfg = MaeriConfig::paper_64();
    verify_partition(&cfg, &legal_partition()).unwrap();
}

#[test]
fn single_cell_overlap_flags_exactly_that_pair() {
    let cfg = MaeriConfig::paper_64();
    let mut rng = SimRng::seed(11);
    for _ in 0..40 {
        let mut vns = legal_partition();
        // Stretch one interior VN a single leaf to the left: it now
        // shares exactly that leaf with its predecessor.
        let victim = 1 + rng.next_below(vns.len() - 1);
        let v = vns[victim];
        vns[victim] = VnRange::new(v.start - 1, v.len + 1);
        let err = verify_partition(&cfg, &vns).unwrap_err();
        assert_eq!(
            err,
            VerifyError::VnOverlap {
                first_vn: victim - 1,
                second_vn: victim,
                leaf: v.start - 1,
            }
        );
    }
}

#[test]
fn single_cell_out_of_range_flags_exact_bounds() {
    let cfg = MaeriConfig::paper_64();
    let mut rng = SimRng::seed(13);
    for _ in 0..40 {
        let mut vns = legal_partition();
        // Grow the last VN past the array by 1..=4 cells.
        let last = vns.len() - 1;
        let grow = 1 + rng.next_below(4);
        let v = vns[last];
        vns[last] = VnRange::new(v.start, v.len + grow);
        let err = verify_partition(&cfg, &vns).unwrap_err();
        assert_eq!(
            err,
            VerifyError::VnOutOfRange {
                vn: last,
                start: v.start,
                end: v.end() + grow,
                leaves: 64,
            }
        );
    }
}

#[test]
fn single_cell_onto_dead_leaf_flags_fault_inconsistency() {
    let spec = FaultSpec::new(21).dead_multipliers(100);
    let plan = FaultPlan::materialize(spec, 64);
    let dead: Vec<usize> = plan.dead_leaves().iter().copied().collect();
    assert!(!dead.is_empty());
    let cfg = MaeriConfig::builder(64)
        .distribution_bandwidth(8)
        .collection_bandwidth(8)
        .faults(spec)
        .build()
        .unwrap();
    // Legal on the degraded fabric: pack into the healthy spans.
    let spans = plan.healthy_spans();
    verify_partition(&cfg, &spans).unwrap();
    let mut rng = SimRng::seed(22);
    for _ in 0..40 {
        // Drop a fresh single-cell VN onto a random dead leaf. Dead
        // leaves sit in the gaps between healthy spans, so the only
        // violated invariant is fault consistency.
        let mut vns = spans.clone();
        let leaf = dead[rng.next_below(dead.len())];
        vns.push(VnRange::new(leaf, 1));
        let err = verify_partition(&cfg, &vns).unwrap_err();
        assert_eq!(
            err,
            VerifyError::DeadLeaf {
                vn: spans.len(),
                leaf,
            }
        );
    }
}

#[test]
fn knob_mutations_flag_exact_knob_and_bounds() {
    let base = MaeriConfig::paper_64();
    let layer = ConvLayer::new("mut", 16, 14, 14, 8, 3, 3, 1, 1);
    let good = MappingCandidate::with_base_bandwidth(
        CandidateKind::Conv(ConvMapping {
            channel_tile: 2,
            max_vns: 64,
            loop_order: LoopOrder::FilterMajor,
        }),
        &base,
    );
    verify_mapping(&base, &VerifyLayer::Conv(&layer), &good).unwrap();

    // channel_tile pushed one past either end of its range.
    for (ct, value) in [(0usize, 0usize), (17, 17)] {
        let mut cand = good;
        cand.kind = CandidateKind::Conv(ConvMapping {
            channel_tile: ct,
            max_vns: 64,
            loop_order: LoopOrder::FilterMajor,
        });
        let err = verify_mapping(&base, &VerifyLayer::Conv(&layer), &cand).unwrap_err();
        assert_eq!(
            err,
            VerifyError::KnobOutOfRange {
                knob: "channel_tile",
                value,
                min: 1,
                max: 16,
            }
        );
    }

    // max_vns zeroed.
    let mut cand = good;
    cand.kind = CandidateKind::Conv(ConvMapping {
        channel_tile: 2,
        max_vns: 0,
        loop_order: LoopOrder::FilterMajor,
    });
    let err = verify_mapping(&base, &VerifyLayer::Conv(&layer), &cand).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::KnobOutOfRange {
                knob: "max_vns",
                value: 0,
                min: 1,
                ..
            }
        ),
        "unexpected error: {err}"
    );

    // FC vn_size past the healthy-span capacity.
    let fc = FcLayer::new("mut-fc", 128, 10);
    let cand = MappingCandidate::with_base_bandwidth(CandidateKind::Fc { vn_size: 65 }, &base);
    let err = verify_mapping(&base, &VerifyLayer::Fc(&fc), &cand).unwrap_err();
    assert_eq!(
        err,
        VerifyError::KnobOutOfRange {
            knob: "vn_size",
            value: 65,
            min: 1,
            max: 64,
        }
    );

    // Kind mismatch is structural, not a knob error.
    let err = verify_mapping(&base, &VerifyLayer::Fc(&fc), &good).unwrap_err();
    assert_eq!(
        err,
        VerifyError::KindMismatch {
            candidate: "conv",
            layer: "fc",
        }
    );
}

#[test]
fn seeded_mutation_sweep_flags_one_invariant_per_mutation() {
    let cfg = MaeriConfig::paper_64();
    let mut rng = SimRng::seed(0xA5);
    for _ in 0..200 {
        let mut vns = legal_partition();
        let victim = rng.next_below(vns.len());
        let v = vns[victim];
        match rng.next_below(2) {
            // Overlap with the predecessor (or out-of-range shift when
            // the victim is VN 0, which starts at leaf 0).
            0 if victim > 0 => {
                vns[victim] = VnRange::new(v.start - 1, v.len + 1);
                let err = verify_partition(&cfg, &vns).unwrap_err();
                assert_eq!(
                    err,
                    VerifyError::VnOverlap {
                        first_vn: victim - 1,
                        second_vn: victim,
                        leaf: v.start - 1,
                    }
                );
            }
            0 => {
                // VN 0 teleported past the end instead.
                vns[victim] = VnRange::new(64, 1);
                let err = verify_partition(&cfg, &vns).unwrap_err();
                assert_eq!(
                    err,
                    VerifyError::VnOutOfRange {
                        vn: victim,
                        start: 64,
                        end: 65,
                        leaves: 64,
                    }
                );
            }
            // Overlap with the successor by growing one cell (the
            // packing is gapless, so growth always collides; the last
            // VN runs out of range instead).
            _ => {
                vns[victim] = VnRange::new(v.start, v.len + 1);
                let err = verify_partition(&cfg, &vns).unwrap_err();
                if victim + 1 < vns.len() {
                    assert_eq!(
                        err,
                        VerifyError::VnOverlap {
                            first_vn: victim,
                            second_vn: victim + 1,
                            leaf: v.end(),
                        }
                    );
                } else {
                    assert_eq!(
                        err,
                        VerifyError::VnOutOfRange {
                            vn: victim,
                            start: v.start,
                            end: v.end() + 1,
                            leaves: 64,
                        }
                    );
                }
            }
        }
    }
}
