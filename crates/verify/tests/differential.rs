//! Differential test: the static verifier agrees with the cycle
//! simulator's dynamic checks.
//!
//! For every VN partition on fabrics up to 16 multipliers (exhaustive),
//! and for seeded-random samples at 64 multipliers (fault-free and
//! faulty), `maeri_verify::verify_reduction` must accept exactly when
//! `maeri::art::ArtConfig::build_with_faults` accepts — and on mutual
//! acceptance, the two walks must agree on forwarding-link count,
//! active adders, and throughput slowdown.

use maeri::art::{ArtConfig, VnRange};
use maeri::fault::{FaultPlan, FaultSpec};
use maeri_noc::{BinaryTree, ChubbyTree};
use maeri_sim::SimRng;
use maeri_verify::verify_reduction;

fn chubby(leaves: usize, bw: usize) -> ChubbyTree {
    ChubbyTree::new(BinaryTree::with_leaves(leaves).unwrap(), bw).unwrap()
}

/// Asserts accept/reject parity for one partition, and metric equality
/// when both sides accept. Returns whether the partition was accepted.
fn assert_parity(leaves: usize, bw: usize, faults: Option<&FaultPlan>, vns: &[VnRange]) -> bool {
    let static_side = verify_reduction(&chubby(leaves, bw), faults, vns);
    let dynamic_side = ArtConfig::build_with_faults(chubby(leaves, bw), vns, faults);
    assert_eq!(
        static_side.is_ok(),
        dynamic_side.is_ok(),
        "verdict mismatch on {vns:?} (leaves={leaves}, bw={bw}): static={static_side:?}",
    );
    match (static_side, dynamic_side) {
        (Ok(report), Ok(art)) => {
            assert_eq!(
                report.forwarding_links,
                art.forwarding_links().len(),
                "forwarding-link count mismatch on {vns:?}"
            );
            assert_eq!(
                report.active_adders,
                art.active_adders(),
                "active-adder count mismatch on {vns:?}"
            );
            assert!(
                (report.collection_slowdown - art.throughput_slowdown()).abs() < 1e-12,
                "slowdown mismatch on {vns:?}: {} vs {}",
                report.collection_slowdown,
                art.throughput_slowdown()
            );
            assert_eq!(report.busy_leaves, art.busy_leaves());
            assert_eq!(report.num_vns, art.output_nodes().len());
            true
        }
        _ => false,
    }
}

/// Enumerates every partition of `leaves` cells into contiguous VNs
/// with arbitrary idle gaps, invoking `f` on each (including the empty
/// partition). There are Fib(2n+1) of them: 34 at 4 leaves, 1597 at 8.
fn for_each_gapped_partition(leaves: usize, f: &mut impl FnMut(&[VnRange])) {
    fn recurse(
        leaves: usize,
        cursor: usize,
        acc: &mut Vec<VnRange>,
        f: &mut impl FnMut(&[VnRange]),
    ) {
        if cursor >= leaves {
            f(acc);
            return;
        }
        // Leave `cursor` idle.
        recurse(leaves, cursor + 1, acc, f);
        // Or start a VN of every possible length at `cursor`.
        for len in 1..=(leaves - cursor) {
            acc.push(VnRange::new(cursor, len));
            recurse(leaves, cursor + len, acc, f);
            acc.pop();
        }
    }
    recurse(leaves, 0, &mut Vec::new(), f);
}

/// Enumerates every gapless composition of `leaves` into VN sizes
/// (2^(leaves-1) of them: 32768 at 16 leaves).
fn for_each_composition(leaves: usize, f: &mut impl FnMut(&[VnRange])) {
    fn recurse(
        leaves: usize,
        cursor: usize,
        acc: &mut Vec<VnRange>,
        f: &mut impl FnMut(&[VnRange]),
    ) {
        if cursor == leaves {
            f(acc);
            return;
        }
        for len in 1..=(leaves - cursor) {
            acc.push(VnRange::new(cursor, len));
            recurse(leaves, cursor + len, acc, f);
            acc.pop();
        }
    }
    recurse(leaves, 0, &mut Vec::new(), f);
}

#[test]
fn exhaustive_gapped_partitions_at_4_and_8_leaves() {
    for &(leaves, expected_count) in &[(4usize, 34usize), (8, 1597)] {
        for bw in [1, leaves / 2] {
            let mut total = 0usize;
            let mut accepted = 0usize;
            for_each_gapped_partition(leaves, &mut |vns| {
                total += 1;
                if assert_parity(leaves, bw, None, vns) {
                    accepted += 1;
                }
            });
            assert_eq!(total, expected_count);
            // Every disjoint in-range partition is mappable on a
            // healthy fabric (non-blocking reduction, Property 2).
            assert_eq!(accepted, total);
        }
    }
}

#[test]
fn exhaustive_compositions_at_16_leaves() {
    let mut total = 0usize;
    for_each_composition(16, &mut |vns| {
        total += 1;
        assert!(assert_parity(16, 8, None, vns));
    });
    assert_eq!(total, 1 << 15);
}

#[test]
fn exhaustive_gapped_partitions_at_8_leaves_with_faults() {
    // A fault plan dense enough to kill leaves and sever forwarding
    // links on an 8-leaf fabric; parity must hold on rejects (dead
    // leaf) exactly as on accepts.
    for seed in 0..4u64 {
        let spec = FaultSpec::new(seed)
            .dead_multipliers(250)
            .dead_forwarding_links(250);
        let plan = FaultPlan::materialize(spec, 8);
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for_each_gapped_partition(8, &mut |vns| {
            if assert_parity(8, 4, Some(&plan), vns) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        });
        if !plan.dead_leaves().is_empty() {
            assert!(rejected > 0, "seed {seed}: no partition hit a dead leaf");
        }
        assert!(accepted > 0, "seed {seed}: fabric unusable");
    }
}

/// Draws a random partition with idle gaps; occasionally (when `dirty`)
/// produces overlapping or out-of-range ranges so reject parity is
/// exercised too. VN order is shuffled so the walks see unsorted input.
fn random_partition(rng: &mut SimRng, leaves: usize, dirty: bool) -> Vec<VnRange> {
    let mut vns = Vec::new();
    let mut cursor = 0usize;
    while cursor < leaves {
        if rng.next_bool(0.25) {
            cursor += 1 + rng.next_below(3);
            continue;
        }
        let len = 1 + rng.next_below((leaves - cursor).min(12));
        vns.push(VnRange::new(cursor, len));
        cursor += len;
    }
    if dirty && !vns.is_empty() {
        let victim = rng.next_below(vns.len());
        let v = vns[victim];
        vns[victim] = match rng.next_below(3) {
            // Shift left: may overlap the previous VN or leave bounds.
            0 => VnRange::new(v.start.saturating_sub(1 + rng.next_below(2)), v.len),
            // Grow: may overlap the next VN or run past the leaves.
            1 => VnRange::new(v.start, v.len + 1 + rng.next_below(leaves / 4)),
            // Teleport past the end of the array.
            _ => VnRange::new(leaves - 1, 2 + rng.next_below(4)),
        };
    }
    // Shuffle so neither walk can rely on sorted input.
    for i in (1..vns.len()).rev() {
        vns.swap(i, rng.next_below(i + 1));
    }
    vns
}

#[test]
fn seeded_random_partitions_at_16_leaves() {
    let mut rng = SimRng::seed(0x1616);
    let mut accepted = 0usize;
    for trial in 0..2000 {
        let vns = random_partition(&mut rng, 16, trial % 3 == 0);
        if assert_parity(16, 8, None, &vns) {
            accepted += 1;
        }
    }
    assert!(accepted > 1000);
}

#[test]
fn seeded_random_partitions_at_64_leaves() {
    let mut rng = SimRng::seed(0x6464);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for trial in 0..1500 {
        let vns = random_partition(&mut rng, 64, trial % 3 == 0);
        for bw in [8, 16] {
            if assert_parity(64, bw, None, &vns) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    assert!(accepted > 1500, "accepted only {accepted}");
    assert!(rejected > 100, "rejected only {rejected}");
}

/// Draws a random partition confined to the fabric's healthy spans, so
/// it is dead-leaf-free by construction and exercises the faulty
/// forwarding-link rules on the accept path.
fn random_partition_in_spans(rng: &mut SimRng, spans: &[VnRange]) -> Vec<VnRange> {
    let mut vns = Vec::new();
    for span in spans {
        let mut cursor = span.start;
        while cursor < span.end() {
            if rng.next_bool(0.2) {
                cursor += 1;
                continue;
            }
            let len = 1 + rng.next_below((span.end() - cursor).min(9));
            vns.push(VnRange::new(cursor, len));
            cursor += len;
        }
    }
    vns
}

#[test]
fn seeded_random_partitions_at_64_leaves_with_faults() {
    let mut rng = SimRng::seed(0x64F);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for seed in 0..6u64 {
        let spec = FaultSpec::new(seed)
            .dead_multipliers(60)
            .dead_adders(30)
            .dead_forwarding_links(120);
        let plan = FaultPlan::materialize(spec, 64);
        let spans = plan.healthy_spans();
        // Partitions built from the plan's own healthy spans must
        // verify: the fault-aware remapper depends on this.
        assert!(assert_parity(64, 8, Some(&plan), &spans));
        for trial in 0..300 {
            // Alternate between span-confined draws (dead-leaf-free,
            // so the severed-FL accept path gets real coverage) and
            // free draws (which almost always hit a dead leaf).
            let vns = if trial % 2 == 0 {
                random_partition_in_spans(&mut rng, &spans)
            } else {
                random_partition(&mut rng, 64, trial % 4 == 1)
            };
            if assert_parity(64, 8, Some(&plan), &vns) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    assert!(accepted > 500, "accepted only {accepted}");
    assert!(rejected > 500, "rejected only {rejected}");
}
