//! Criterion microbenchmarks of the fabric itself: ART construction
//! (the Section 4.1 VN-construction algorithm) and functional
//! reduction, across array sizes and VN shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maeri::art::{pack_vns, ArtConfig, VnRange};
use maeri_noc::{BinaryTree, ChubbyTree};

fn chubby(leaves: usize, bw: usize) -> ChubbyTree {
    ChubbyTree::new(BinaryTree::with_leaves(leaves).unwrap(), bw).unwrap()
}

fn bench_vn_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("art_vn_construction");
    for &leaves in &[64usize, 256, 1024] {
        // Paper-flavoured irregular VN mix.
        let sizes: Vec<usize> = (0..leaves)
            .map(|i| 3 + (i * 7) % 25)
            .scan(0usize, |used, s| {
                *used += s;
                (*used <= leaves).then_some(s)
            })
            .collect();
        let (ranges, _) = pack_vns(leaves, &sizes);
        group.bench_with_input(
            BenchmarkId::new("irregular_mix", leaves),
            &ranges,
            |b, ranges| {
                b.iter(|| ArtConfig::build(chubby(leaves, 8), std::hint::black_box(ranges)));
            },
        );
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("art_reduce");
    for &vn in &[5usize, 9, 27] {
        let leaves = 64;
        let count = leaves / vn;
        let (ranges, _) = pack_vns(leaves, &vec![vn; count]);
        let config = ArtConfig::build(chubby(leaves, 8), &ranges).unwrap();
        let values: Vec<f32> = (0..leaves).map(|i| i as f32 * 0.25).collect();
        group.bench_with_input(BenchmarkId::new("vn_size", vn), &config, |b, config| {
            b.iter(|| config.reduce(std::hint::black_box(&values)));
        });
    }
    group.finish();
}

fn bench_whole_tree_reduction(c: &mut Criterion) {
    c.bench_function("art_reduce_fc_256", |b| {
        let config = ArtConfig::build(chubby(256, 16), &[VnRange::new(0, 256)]).unwrap();
        let values: Vec<f32> = (0..256).map(|i| (i as f32).sin()).collect();
        b.iter(|| config.reduce(std::hint::black_box(&values)));
    });
}

criterion_group!(
    benches,
    bench_vn_construction,
    bench_reduce,
    bench_whole_tree_reduction
);
criterion_main!(benches);
