//! Criterion microbenchmarks of the dataflow mappers: dense CONV,
//! sparse CONV, LSTM and cross-layer planning+costing throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maeri::{ConvMapper, CrossLayerMapper, LstmMapper, MaeriConfig, SparseConvMapper, VnPolicy};
use maeri_dnn::layer::Layer;
use maeri_dnn::{zoo, ConvLayer, LstmLayer, WeightMask};
use maeri_sim::SimRng;

fn bench_dense_conv(c: &mut Criterion) {
    let cfg = MaeriConfig::paper_64();
    let mapper = ConvMapper::new(cfg);
    let mut group = c.benchmark_group("conv_mapper");
    for layer in [
        ConvLayer::new("alexnet_c1", 3, 224, 224, 96, 11, 11, 4, 2),
        zoo::vgg16_c8(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("auto_policy", layer.name.clone()),
            &layer,
            |b, layer| b.iter(|| mapper.run(std::hint::black_box(layer), VnPolicy::Auto)),
        );
    }
    group.finish();
}

fn bench_sparse_conv(c: &mut Criterion) {
    let cfg = MaeriConfig::paper_64();
    let mapper = SparseConvMapper::new(cfg);
    let layer = zoo::vgg16_c8();
    let mut group = c.benchmark_group("sparse_mapper");
    for pct in [0u32, 50] {
        let mask = WeightMask::generate(&layer, f64::from(pct) / 100.0, &mut SimRng::seed(1));
        group.bench_with_input(
            BenchmarkId::new("vgg16_c8", format!("{pct}pct")),
            &mask,
            |b, mask| b.iter(|| mapper.run(std::hint::black_box(&layer), mask, 3)),
        );
    }
    group.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let mapper = LstmMapper::new(MaeriConfig::paper_64());
    let layer = LstmLayer::new("ds2_rnn", 1280, 1280);
    c.bench_function("lstm_mapper_ds2", |b| {
        b.iter(|| mapper.run(std::hint::black_box(&layer)));
    });
}

fn bench_cross_layer(c: &mut Criterion) {
    let mapper = CrossLayerMapper::new(MaeriConfig::paper_64());
    let alexnet = zoo::alexnet();
    let chain: Vec<ConvLayer> = ["alexnet_conv3", "alexnet_conv4", "alexnet_conv5"]
        .iter()
        .map(|name| match alexnet.layer(name) {
            Some(Layer::Conv(conv)) => conv.clone(),
            _ => unreachable!(),
        })
        .collect();
    c.bench_function("cross_layer_map_c", |b| {
        b.iter(|| mapper.run(std::hint::black_box(&chain)));
    });
}

criterion_group!(
    benches,
    bench_dense_conv,
    bench_sparse_conv,
    bench_lstm,
    bench_cross_layer
);
criterion_main!(benches);
