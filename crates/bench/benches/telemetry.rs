//! Criterion microbenchmarks of the telemetry probes: the plain
//! simulator entry point vs the probed path with a `NullSink` (must
//! monomorphize to the same code), a `CountingSink` (one counter bump
//! per event), and the full `TelemetrySink` reduction. This is the
//! precise version of the neutrality guard in
//! `crates/maeri/tests/telemetry_neutrality.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use maeri::cycle_sim::{simulate_conv_layer, simulate_conv_layer_probed};
use maeri::{MaeriConfig, VnPolicy};
use maeri_dnn::ConvLayer;
use maeri_telemetry::{CountingSink, NullSink, TelemetrySink};

fn layer() -> ConvLayer {
    // AlexNet C2-shaped: big enough that per-cycle probe overhead would
    // show, small enough to iterate quickly.
    ConvLayer::new("bench_conv", 48, 27, 27, 128, 5, 5, 1, 2)
}

fn bench_probe_overhead(c: &mut Criterion) {
    let cfg = MaeriConfig::paper_64();
    let layer = layer();
    let mut group = c.benchmark_group("telemetry_probe_overhead");
    group.bench_function("plain", |b| {
        b.iter(|| simulate_conv_layer(&cfg, std::hint::black_box(&layer), VnPolicy::Auto));
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| {
            simulate_conv_layer_probed(
                &cfg,
                std::hint::black_box(&layer),
                VnPolicy::Auto,
                &mut NullSink,
            )
        });
    });
    group.bench_function("counting_sink", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            simulate_conv_layer_probed(
                &cfg,
                std::hint::black_box(&layer),
                VnPolicy::Auto,
                &mut sink,
            )
        });
    });
    group.bench_function("telemetry_sink", |b| {
        b.iter(|| {
            let mut sink = TelemetrySink::new();
            simulate_conv_layer_probed(
                &cfg,
                std::hint::black_box(&layer),
                VnPolicy::Auto,
                &mut sink,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
