//! Criterion microbenchmarks of the baseline accelerator models and
//! the functional (value-accurate) fabric simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use maeri::{functional, MaeriConfig};
use maeri_baselines::{FixedClusterArray, RowStationary, SystolicArray};
use maeri_dnn::{zoo, Tensor, WeightMask};
use maeri_sim::SimRng;

fn bench_baseline_models(c: &mut Criterion) {
    let layer = zoo::vgg16_c8();
    c.bench_function("systolic_model_vgg_c8", |b| {
        let sa = SystolicArray::new(8, 8, 8);
        b.iter(|| sa.run_conv(std::hint::black_box(&layer)));
    });
    c.bench_function("row_stationary_model_vgg_c8", |b| {
        let rs = RowStationary::new(8, 8, 8);
        b.iter(|| rs.run_conv(std::hint::black_box(&layer)));
    });
    c.bench_function("cluster_model_vgg_c8_sparse", |b| {
        let cluster = FixedClusterArray::paper_baseline();
        let mask = WeightMask::generate(&layer, 0.5, &mut SimRng::seed(1));
        b.iter(|| cluster.run_conv(std::hint::black_box(&layer), &mask, 3));
    });
}

fn bench_functional_fabric(c: &mut Criterion) {
    let cfg = MaeriConfig::paper_64();
    let layer = zoo::fig17_example();
    let mut rng = SimRng::seed(7);
    let input = Tensor::random(&[3, 5, 5], &mut rng);
    let weights = Tensor::random(&[8, 3, 3, 3], &mut rng);
    c.bench_function("functional_conv_fig17", |b| {
        b.iter(|| {
            functional::run_conv(
                &cfg,
                std::hint::black_box(&layer),
                std::hint::black_box(&input),
                std::hint::black_box(&weights),
            )
        });
    });
}

criterion_group!(benches, bench_baseline_models, bench_functional_fabric);
criterion_main!(benches);
