//! Report formatting shared by the figure binaries.

use maeri_sim::table::Table;

/// Prints a standard experiment header: what is being regenerated and
/// where it appears in the paper.
pub fn header(artifact: &str, paper_claim: &str) {
    println!("================================================================");
    println!("MAERI reproduction — {artifact}");
    println!("Paper reference: {paper_claim}");
    println!("================================================================");
}

/// Prints a table with a short section caption.
pub fn section(caption: &str, table: &Table) {
    println!("\n-- {caption} --");
    print!("{table}");
}

/// Prints the paper-vs-measured comparison lines at the end of a
/// report.
pub fn summary(lines: &[String]) {
    println!("\nPaper vs measured:");
    for line in lines {
        println!("  * {line}");
    }
    println!();
}

/// Formats a cycle count with thousands separators for readability.
#[must_use]
pub fn cycles(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_formats_thousands() {
        assert_eq!(cycles(0), "0");
        assert_eq!(cycles(156), "156");
        assert_eq!(cycles(1323), "1,323");
        assert_eq!(cycles(14827529), "14,827,529");
    }
}
