//! Telemetry profile: the fabric as seen by its own probes. The other
//! reports quote end-of-run totals; this one reduces the cycle-level
//! event stream — link occupancy per tree level, multiplier busy and
//! stall fractions, VN reduction latency — into a per-layer profile,
//! showing *where* time goes inside the distribution, multiplier, and
//! reduction networks rather than just how much of it elapses.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Telemetry profile — cycle-level fabric observability",
        "observability extension: probes over Section 4's distribution and reduction networks",
    );
    let rows = experiments::telemetry_profile();
    let mut table = Table::new(vec![
        "layer",
        "cycles",
        "mult busy",
        "dist stall",
        "coll stall",
        "peak link",
        "vn p50",
        "vn p95",
        "adders",
        "events",
    ]);
    for row in &rows {
        table.row(vec![
            row.layer.clone(),
            report::cycles(row.cycles),
            format!("{}%", fmt_f64(row.mult_busy * 100.0, 1)),
            format!("{}%", fmt_f64(row.dist_stall * 100.0, 1)),
            format!("{}%", fmt_f64(row.collect_stall * 100.0, 1)),
            format!("{}%", fmt_f64(row.peak_link_utilization * 100.0, 1)),
            row.vn_latency_p50.to_string(),
            row.vn_latency_p95.to_string(),
            row.art_active_adders.to_string(),
            report::cycles(row.events),
        ]);
    }
    report::section(
        "AlexNet convolutions, 64 switches, fabric probes live",
        &table,
    );
    let busiest = rows
        .iter()
        .max_by(|a, b| a.mult_busy.total_cmp(&b.mult_busy))
        .expect("profile is non-empty");
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    report::summary(&[
        format!(
            "probes are zero-cost when disabled (the NullSink path monomorphizes \
             away) and recorded {total_events} events across {} layers here",
            rows.len()
        ),
        format!(
            "{} keeps the multipliers busiest ({}% of cycles); stalls split into \
             distribution starvation vs collection backpressure, separating the \
             two bandwidth stories the paper argues about",
            busiest.layer,
            fmt_f64(busiest.mult_busy * 100.0, 1)
        ),
        "VN latency percentiles come from per-wave reduction timestamps, so a \
         congested ART shows up as a fat p95 tail rather than a vague mean"
            .to_owned(),
    ]);
}
