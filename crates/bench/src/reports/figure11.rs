//! Regenerates Figure 11: area/power breakdowns of the design points
//! (a-d) and core-area scaling versus PE count (e).

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 11 — area and power breakdown",
        "(a-d) component breakdowns at comp/area match; (e) post-P&R area vs PE count",
    );

    for point in experiments::table3() {
        let mut table = Table::new(vec!["component", "area (um^2)", "area %", "power (mW)"]);
        let total = point.area_um2();
        for (name, cost) in point.breakdown() {
            table.row(vec![
                name,
                fmt_f64(cost.area_um2, 0),
                fmt_pct(cost.area_um2 / total),
                fmt_f64(cost.power_mw, 1),
            ]);
        }
        report::section(
            &format!(
                "{} ({} PEs, {:.2} mm², {:.0} mW)",
                point.kind.name(),
                point.num_pes,
                point.area_um2() / 1e6,
                point.power_mw()
            ),
            &table,
        );
    }

    let mut scaling = Table::new(vec!["PEs", "systolic", "MAERI", "Eyeriss"]);
    for (n, sa, maeri, eyeriss) in experiments::figure11_scaling() {
        scaling.row(vec![
            n.to_string(),
            fmt_f64(sa, 2),
            fmt_f64(maeri, 2),
            fmt_f64(eyeriss, 2),
        ]);
    }
    report::section(
        "Fig 11(e): core area normalized to the 16-PE systolic array",
        &scaling,
    );
    report::summary(&[
        "paper: prefetch-buffer SRAM dominates area and power in every design — holds".to_owned(),
        "paper: systolic < MAERI < Eyeriss per-PE area at every array size — holds".to_owned(),
        "paper: MAERI adds ~6.5% power and removes ~36.8% area vs Eyeriss at comp match".to_owned(),
    ]);
}
