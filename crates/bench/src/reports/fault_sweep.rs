//! Fault sweep: MAERI's reconfigurable trees are also a yield story.
//! Because virtual neurons are just contiguous leaf ranges, the mappers
//! can carve them around dead multiplier switches and keep producing
//! reference-exact outputs on a degraded fabric — a rigid systolic
//! array loses whole rows/columns instead. This report sweeps the
//! dead-switch rate from 0 to 25 % and measures surviving compute
//! yield, mapping success, and the cycle cost of the lost parallelism.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Fault sweep — graceful degradation on a faulty fabric",
        "robustness extension: fault-aware VN remapping over Section 4's trees",
    );
    let rows = experiments::fault_sweep();
    let mut table = Table::new(vec![
        "dead switches",
        "fabric yield",
        "mapped points",
        "mean cycles",
        "slowdown",
    ]);
    for row in &rows {
        table.row(vec![
            format!("{:.1}%", f64::from(row.rate_permille) / 10.0),
            format!("{:.1}%", row.fabric_yield * 100.0),
            format!("{}/{}", row.mapped, row.points),
            report::cycles(row.mean_cycles.round() as u64),
            format!("{}x", fmt_f64(row.slowdown, 2)),
        ]);
    }
    report::section(
        "AlexNet convolutions, 64 switches, 3 fault placements per rate",
        &table,
    );
    let last = rows.last().expect("sweep is non-empty");
    report::summary(&[
        format!(
            "at {:.0}% dead multiplier switches every AlexNet layer still maps \
             ({}/{} points) and outputs stay reference-exact — the mappers shrink \
             and repack virtual neurons into the surviving healthy spans",
            f64::from(last.rate_permille) / 10.0,
            last.mapped,
            last.points
        ),
        format!(
            "the cost is throughput, not correctness: {}x mean slowdown at 25% \
             dead switches, roughly tracking the lost compute (yield {:.1}%)",
            fmt_f64(last.slowdown, 2),
            last.fabric_yield * 100.0
        ),
        "wedged or crashing points are contained by the runtime's retry/timeout \
         supervision and reported as failed jobs, never a hung batch"
            .to_owned(),
    ]);
}
