//! Regenerates Table 1: parameters of recent DNNs, derived from the
//! model zoo.

use crate::report;
use maeri_dnn::zoo;
use maeri_sim::table::Table;

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Table 1 — parameters of recent DNNs",
        "layer-type counts and filter sizes per network",
    );
    let mut table = Table::new(vec![
        "DNN",
        "CONV",
        "LSTM/RNN",
        "POOL",
        "FC",
        "filter sizes",
        "total MACs",
    ]);
    for model in zoo::all_models() {
        table.row(vec![
            model.name().to_owned(),
            model.count_kind("CONV").to_string(),
            model.count_kind("LSTM").to_string(),
            model.count_kind("POOL").to_string(),
            model.count_kind("FC").to_string(),
            model.filter_sizes().join(", "),
            report::cycles(model.total_work()),
        ]);
    }
    report::section("model zoo survey", &table);
    report::summary(&[
        "paper Table 1 counts: AlexNet 6/0/1/1, GoogLeNet 59/0/16/5, ResNet-50 49/0/2/0, \
         VGG-16 13/0/5/3, DeepSpeech2 2/7/0/1, Deep Voice 0/40/0/3"
            .to_owned(),
        "our AlexNet uses the single-tower topology (5 CONV, 3 POOL, 3 FC); all other \
         rows match the paper"
            .to_owned(),
    ]);
}
