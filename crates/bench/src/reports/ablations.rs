//! Ablation studies for the design choices DESIGN.md calls out:
//! the ART's forwarding links, the chubby bandwidth, the collection
//! bandwidth (traced cycle by cycle), and the VN-sizing policy.

use crate::report;
use maeri::cycle_sim::{simulate_conv_iteration, LaneSpec};
use maeri::{ConvMapper, MaeriConfig, VnPolicy};
use maeri_dnn::zoo;
use maeri_noc::reduction::ReductionKind;
use maeri_sim::table::{fmt_pct, Table};

fn ablate_forwarding_links() {
    // Removing the ART's forwarding links degrades it to a fat tree:
    // reductions must occupy aligned power-of-two subtrees.
    let mut table = Table::new(vec![
        "VN size (layer)",
        "ART (with FLs)",
        "no FLs (fat tree)",
        "utilization lost",
    ]);
    let cases = [
        (9usize, "VGG 3x3 slice"),
        (25, "AlexNet C2 5x5 slice"),
        (27, "VGG 3x3x3 neuron"),
        (14, "50%-sparse slice"),
        (5, "pruned tiny neuron"),
    ];
    for (vn, label) in cases {
        let art = ReductionKind::Art.utilization(vn, 64);
        let fat = ReductionKind::FatTree.utilization(vn, 64);
        table.row(vec![
            format!("{vn} ({label})"),
            fmt_pct(art),
            fmt_pct(fat),
            fmt_pct(art - fat),
        ]);
    }
    report::section("ablation 1: ART forwarding links", &table);
}

fn ablate_chubby_bandwidth() {
    let layer = zoo::vgg16_c8();
    let mut table = Table::new(vec!["root bandwidth", "cycles", "utilization"]);
    for bw in [1usize, 2, 4, 8, 16, 32] {
        let cfg = MaeriConfig::builder(64)
            .distribution_bandwidth(bw)
            .collection_bandwidth(bw)
            .build()
            .expect("valid configuration");
        let run = ConvMapper::new(cfg)
            .run(&layer, VnPolicy::Auto)
            .expect("mappable");
        table.row(vec![
            format!("{bw}x"),
            report::cycles(run.cycles.as_u64()),
            fmt_pct(run.utilization()),
        ]);
    }
    report::section(
        "ablation 2: chubby-tree root bandwidth (VGG-16 conv8, dense)",
        &table,
    );
}

fn ablate_collection_bandwidth_trace() {
    // Clocked trace of the Figure 13 effect: 16 tiny sparse lanes whose
    // outputs must all leave through the ART root. Thin collection
    // back-pressures ready waves; the stall column shows it directly.
    let mut table = Table::new(vec![
        "collection bandwidth",
        "traced cycles",
        "waves/cycle",
        "collection stalls (lane-cycles)",
    ]);
    let lanes = vec![
        LaneSpec {
            vn_size: 4,
            fresh_inputs_per_step: 2
        };
        16
    ];
    for bw in [1usize, 2, 4, 8, 16] {
        let cfg = MaeriConfig::builder(64)
            .distribution_bandwidth(32)
            .collection_bandwidth(bw)
            .build()
            .expect("valid configuration");
        let trace = simulate_conv_iteration(&cfg, &lanes, 200, 2).expect("simulable");
        table.row(vec![
            format!("{bw}x"),
            report::cycles(trace.cycles.as_u64()),
            maeri_sim::table::fmt_f64(trace.throughput(), 2),
            report::cycles(trace.collection_stall_cycles),
        ]);
    }
    report::section(
        "ablation 3: ART collection bandwidth (clocked trace, 16 sparse lanes)",
        &table,
    );
}

fn ablate_vn_policy() {
    let mut table = Table::new(vec![
        "layer",
        "FullFilter util",
        "1 channel/VN util",
        "3 channels/VN util",
        "Auto util",
    ]);
    let mapper = ConvMapper::new(MaeriConfig::paper_64());
    let layers = [
        zoo::vgg16_c8(),
        maeri_dnn::ConvLayer::new("alexnet_conv2", 96, 27, 27, 256, 5, 5, 1, 2),
        maeri_dnn::ConvLayer::new("alexnet_conv1", 3, 224, 224, 96, 11, 11, 4, 2),
    ];
    for layer in layers {
        let util = |policy| {
            mapper
                .run(&layer, policy)
                .map_or(f64::NAN, |r| r.utilization())
        };
        table.row(vec![
            layer.name.clone(),
            fmt_pct(util(VnPolicy::FullFilter)),
            fmt_pct(util(VnPolicy::ChannelsPerVn(1))),
            fmt_pct(util(VnPolicy::ChannelsPerVn(3.min(layer.in_channels)))),
            fmt_pct(util(VnPolicy::Auto)),
        ]);
    }
    report::section("ablation 4: virtual-neuron sizing policy", &table);
}

fn ablate_fold_mode() {
    // Section 4.8 offers two homes for folded psums: adder-switch
    // temporal registers, or round-trips through the prefetch buffer.
    use maeri::FoldMode;
    let mapper = ConvMapper::new(MaeriConfig::paper_64());
    let mut table = Table::new(vec![
        "layer (fold factor)",
        "AS registers: cycles / SRAM",
        "PB round-trip: cycles / SRAM",
    ]);
    for layer in [
        zoo::vgg16_c8(),
        maeri_dnn::ConvLayer::new("alexnet_conv1", 3, 224, 224, 96, 11, 11, 4, 2),
    ] {
        let plan = mapper.plan(&layer, VnPolicy::Auto).expect("mappable");
        let reg = mapper
            .run_with_fold_mode(&layer, VnPolicy::Auto, FoldMode::AdderRegister)
            .expect("mappable");
        let pb = mapper
            .run_with_fold_mode(&layer, VnPolicy::Auto, FoldMode::PbRoundTrip)
            .expect("mappable");
        table.row(vec![
            format!("{} ({}x)", layer.name, plan.fold_factor()),
            format!(
                "{} / {}",
                report::cycles(reg.cycles.as_u64()),
                report::cycles(reg.sram_accesses())
            ),
            format!(
                "{} / {}",
                report::cycles(pb.cycles.as_u64()),
                report::cycles(pb.sram_accesses())
            ),
        ]);
    }
    report::section("ablation 5: folding mode (Section 4.8)", &table);
}

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Ablations — forwarding links, chubby bandwidth, collection trace, VN policy",
        "design-choice studies beyond the paper's figures",
    );
    ablate_forwarding_links();
    ablate_chubby_bandwidth();
    ablate_collection_bandwidth_trace();
    ablate_vn_policy();
    ablate_fold_mode();
    report::summary(&[
        "forwarding links are what separates the ART from a fat tree on the non-power-\
         of-two neurons real (especially sparse) layers produce"
            .to_owned(),
        "bandwidth below 4x starves even dense 3x3 layers; above 8x buys little at 64 \
         switches — matching the paper's 8x design point"
            .to_owned(),
        "the clocked trace shows the Figure-13 mechanism directly: thin collection \
         back-pressures ready reduction waves, capping throughput at the root width"
            .to_owned(),
        "Auto matches or beats every fixed policy; FullFilter collapses on wide-channel \
         layers exactly as Section 6.1 warns for large VNs"
            .to_owned(),
        "adder-switch temporal registers make folding nearly free; the PB round-trip \
         alternative pays two SRAM ops per psum per extra pass"
            .to_owned(),
    ]);
}
