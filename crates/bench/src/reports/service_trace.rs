//! Service trace: the request-path span vocabulary over a seeded
//! virtual-time replay.
//!
//! `maeri_serve::loadsim::simulate_traced` replays seeded Poisson
//! traffic through the real admission policy and runtime and emits the
//! same span kinds the live flight recorder records — verify,
//! admission, queue wait, dispatch, reply, with job-0 sentinels for
//! rejects — stamped on the virtual clock. Every printed number
//! (per-kind span counts and durations, per-tenant queueing, the
//! Chrome-export size) is therefore byte-identical on every host at
//! every worker count, while still exercising the exact export and
//! validation code paths the live service uses.

use std::time::Instant;

use maeri_runtime::{PhaseStats, Runtime};
use maeri_serve::loadsim::{self, LoadScenario};
use maeri_serve::traffic::{self, TrafficConfig};
use maeri_sim::histogram::Histogram;
use maeri_sim::table::Table;
use maeri_telemetry::span::{chrome_trace, validate_trace, SpanKind, SpanRecord};

use crate::report;

/// The traffic seed; changing it changes the trace, not the invariants.
const SEED: u64 = 0x0801;

/// Prints this report to stdout.
///
/// # Panics
///
/// Panics if the emitted trace fails span validation — monotonic
/// non-overlapping phases per job are an invariant, not a measurement.
pub fn run() {
    let phase_start = Instant::now();
    report::header(
        "Service trace — request-path spans over a virtual-time replay",
        "End-to-end observability: admission to reply, per job, on the virtual clock",
    );

    let arrivals = traffic::generate(&TrafficConfig {
        seed: SEED,
        arrivals: 200,
        tenants: 3,
        mean_interarrival_us: 2000,
        random_fraction: 0.3,
    });
    let scenario = LoadScenario {
        virtual_workers: 4,
        per_tenant_depth: 6,
        hit_cost_us: 25,
    };
    let runtime = Runtime::new(1);
    let (outcome, spans) = loadsim::simulate_traced(&arrivals, &scenario, &runtime, None);
    validate_trace(&spans).expect("replay trace must validate");

    let mut kind_table = Table::new(vec!["span kind", "spans", "total virtual us", "mean us"]);
    for kind in SpanKind::ALL {
        let of_kind: Vec<&SpanRecord> = spans.iter().filter(|s| s.kind == kind).collect();
        if of_kind.is_empty() {
            continue; // virtual replays have no journal/store/attempt spans
        }
        let total: u64 = of_kind.iter().map(|s| s.dur_us).sum();
        kind_table.row(vec![
            kind.name().to_owned(),
            of_kind.len().to_string(),
            total.to_string(),
            (total / of_kind.len() as u64).to_string(),
        ]);
    }
    report::section("Spans by kind (4 virtual servers, depth 6)", &kind_table);

    let mut tenant_table = Table::new(vec![
        "tenant",
        "jobs",
        "queue p50 us",
        "queue p99 us",
        "dispatch p50 us",
        "dispatch p99 us",
    ]);
    let mut tenants: Vec<String> = spans
        .iter()
        .filter(|s| s.job != 0)
        .map(|s| s.tenant.clone())
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    for tenant in &tenants {
        let mut queue = Histogram::new();
        let mut dispatch = Histogram::new();
        let mut jobs = std::collections::HashSet::new();
        for span in spans.iter().filter(|s| s.job != 0 && &s.tenant == tenant) {
            jobs.insert(span.job);
            match span.kind {
                SpanKind::QueueWait => queue.record(span.dur_us),
                SpanKind::Dispatch => dispatch.record(span.dur_us),
                _ => {}
            }
        }
        let pct = |h: &mut Histogram, p: f64| h.percentile(p).unwrap_or(0).to_string();
        tenant_table.row(vec![
            tenant.clone(),
            jobs.len().to_string(),
            pct(&mut queue, 50.0),
            pct(&mut queue, 99.0),
            pct(&mut dispatch, 50.0),
            pct(&mut dispatch, 99.0),
        ]);
    }
    report::section(
        "Per-tenant queueing and dispatch (virtual us)",
        &tenant_table,
    );

    let chrome = chrome_trace(&spans).render();
    let sentinels = spans.iter().filter(|s| s.job == 0).count();
    let mut export_table = Table::new(vec![
        "arrivals",
        "admitted",
        "rejected",
        "job spans",
        "reject sentinels",
        "chrome events",
        "chrome bytes",
    ]);
    export_table.row(vec![
        outcome.arrivals.to_string(),
        outcome.admitted.to_string(),
        outcome.rejected.to_string(),
        (spans.len() - sentinels).to_string(),
        sentinels.to_string(),
        spans.len().to_string(),
        chrome.len().to_string(),
    ]);
    report::section("Chrome-trace export", &export_table);

    Runtime::global().note_phase(PhaseStats {
        name: "service_trace".to_owned(),
        jobs: outcome.arrivals,
        cache_hits: outcome.hits,
        wall: phase_start.elapsed(),
    });

    report::summary(&[
        format!(
            "every one of the {} admitted jobs traced admission -> reply with monotonic, \
             non-overlapping phases (validator-enforced)",
            outcome.admitted
        ),
        format!(
            "{} rejected arrivals left job-0 admission sentinels instead of vanishing",
            outcome.rejected
        ),
        format!(
            "the Chrome export carries {} events in {} bytes, byte-identical on every host",
            spans.len(),
            chrome.len()
        ),
        "timestamps are virtual (64 cycles/us drain): the trace is a stable artifact, \
         not a wall-clock profile"
            .to_owned(),
    ]);
}
