//! Fleet scheduling: heterogeneous accelerators under per-layer
//! placement, on a virtual clock.
//!
//! Figure 12 shows no single backend dominates — the systolic array
//! wins alexnet_conv1 while MAERI wins the irregular layers — so this
//! report simulates a mixed fleet (two MAERI fabrics of different
//! multiplier counts, a systolic array, a row-stationary array, and a
//! fixed-cluster array) against the homogeneous all-MAERI baseline at
//! equal instance count:
//!
//! * the per-layer greedy routing table over AlexNet;
//! * three traffic mixes × four placement policies, reporting latency
//!   percentiles, throughput, and energy;
//! * a seeded degrade/recover timeline: one MAERI fabric loses 30% of
//!   its multiplier switches mid-replay and the load-aware scheduler
//!   must migrate work off it without losing a job.
//!
//! All accounting is virtual time (`maeri_fleet::simulate_fleet`), so
//! every number is byte-identical on every host and worker count.

use std::time::Instant;

use maeri_fleet::{
    route_network, simulate_fleet, traffic_mixes, Fleet, FleetOutcome, PlacementPolicy, Timeline,
};
use maeri_runtime::{PhaseStats, Runtime};
use maeri_serve::traffic::{self, Arrival, TrafficConfig};
use maeri_serve::wire::JobSpec;
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

use crate::report;

/// Arrival counts and pacing per mix: heavy layers get wider gaps so
/// every mix runs near (but not past) fleet saturation, where policy
/// differences actually show.
fn mix_traffic(name: &str, pool: &[JobSpec]) -> Vec<Arrival> {
    let (arrivals, gap_us) = match name {
        "conv1_heavy" => (48, 15_000),
        "irregular" => (48, 4_000),
        _ => (72, 6_000),
    };
    traffic::generate_from_pool(
        &TrafficConfig {
            seed: 0x0901,
            arrivals,
            tenants: 4,
            mean_interarrival_us: gap_us,
            random_fraction: 0.0,
        },
        pool,
    )
}

fn policy_row(table: &mut Table, outcome: &FleetOutcome, policy: PlacementPolicy, homo_mean: f64) {
    let mut latency = outcome.latency_us.clone();
    let mean = latency.mean().unwrap_or(0.0);
    let speedup = if mean > 0.0 { homo_mean / mean } else { 0.0 };
    table.row(vec![
        policy.name().to_owned(),
        outcome.routed.to_string(),
        outcome.unroutable.to_string(),
        (latency.percentile(50.0).unwrap_or(0) / 1000).to_string(),
        (latency.percentile(99.0).unwrap_or(0) / 1000).to_string(),
        fmt_f64(mean / 1000.0, 1),
        (outcome.makespan_us / 1000).to_string(),
        fmt_f64(outcome.throughput_per_s(), 1),
        fmt_f64(outcome.total_energy_mj(), 1),
        format!("{}x", fmt_f64(speedup, 2)),
    ]);
}

/// Prints this report to stdout.
pub fn run() {
    let phase_start = Instant::now();
    report::header(
        "Fleet schedule — heterogeneous accelerators, per-layer placement",
        "Figure 12's no-single-winner data turned into a fleet scheduling study",
    );
    let runtime = Runtime::global();
    let fleet = Fleet::mixed_report();

    // Fleet composition.
    let mut comp = Table::new(vec!["id", "backend", "kind", "role"]);
    for inst in &fleet.instances {
        let role = match inst.backend.kind() {
            "maeri" => "flexible VN packing, full layer vocabulary",
            "systolic" => "dense CONV/FC, wins regular large layers",
            "rowstat" => "dense CONV, row reuse",
            _ => "dense CONV over fixed 4x4 clusters",
        };
        comp.row(vec![
            inst.id.to_string(),
            inst.backend.name(),
            inst.backend.kind().to_owned(),
            role.to_owned(),
        ]);
    }
    report::section(
        "Fleet composition (homogeneous baseline: same 5 slots, all maeri-64)",
        &comp,
    );

    // Per-layer greedy routing over AlexNet.
    let routes = route_network(&fleet, maeri_dnn::zoo::alexnet().layers(), runtime);
    let mut routing = Table::new(vec![
        "layer",
        "kind",
        "instance",
        "backend",
        "cycles",
        "energy uJ",
    ]);
    for route in &routes {
        routing.row(vec![
            route.layer.clone(),
            route.kind.to_owned(),
            route.instance.to_string(),
            route.backend.clone(),
            route.cycles.to_string(),
            fmt_f64(route.energy_nj / 1000.0, 1),
        ]);
    }
    report::section(
        "Per-layer greedy routing: AlexNet on the mixed fleet",
        &routing,
    );

    // Traffic mixes × placement policies.
    let mut best_conv1_speedup = 0.0f64;
    let mut best_conv1_policy = "";
    for (name, pool) in traffic_mixes() {
        let arrivals = mix_traffic(name, &pool);
        let outcomes: Vec<(PlacementPolicy, FleetOutcome)> = PlacementPolicy::ALL
            .iter()
            .map(|&policy| {
                (
                    policy,
                    simulate_fleet(&arrivals, &fleet, policy, &Timeline::quiet(), runtime),
                )
            })
            .collect();
        let homo_mean = outcomes
            .iter()
            .find(|(p, _)| *p == PlacementPolicy::HomogeneousMaeri)
            .and_then(|(_, o)| o.latency_us.clone().mean())
            .unwrap_or(0.0);
        let mut table = Table::new(vec![
            "policy",
            "routed",
            "lost",
            "p50 ms",
            "p99 ms",
            "mean ms",
            "makespan ms",
            "thru/s",
            "energy mJ",
            "vs homo",
        ]);
        for (policy, outcome) in &outcomes {
            policy_row(&mut table, outcome, *policy, homo_mean);
            if name == "conv1_heavy" && *policy != PlacementPolicy::HomogeneousMaeri {
                let mean = outcome.latency_us.clone().mean().unwrap_or(f64::MAX);
                let speedup = homo_mean / mean;
                if speedup > best_conv1_speedup {
                    best_conv1_speedup = speedup;
                    best_conv1_policy = policy.name();
                }
            }
        }
        report::section(
            &format!("Traffic mix '{name}' ({} arrivals)", arrivals.len()),
            &table,
        );
    }

    // Per-backend utilization under load-aware placement, balanced mix.
    let balanced = traffic_mixes().remove(0);
    let arrivals = mix_traffic(balanced.0, &balanced.1);
    let la = simulate_fleet(
        &arrivals,
        &fleet,
        PlacementPolicy::LoadAware,
        &Timeline::quiet(),
        runtime,
    );
    let mut util = Table::new(vec![
        "instance",
        "backend",
        "jobs",
        "busy ms",
        "util",
        "energy mJ",
    ]);
    for stats in &la.per_instance {
        util.row(vec![
            stats.id.to_string(),
            stats.backend.clone(),
            stats.jobs.to_string(),
            (stats.busy_us / 1000).to_string(),
            fmt_pct(la.utilization(stats.id)),
            fmt_f64(stats.energy_nj / 1.0e6, 1),
        ]);
    }
    report::section("Per-backend utilization (load_aware, balanced mix)", &util);

    // Degraded-mode co-scheduling: a seeded timeline kills 30% of one
    // MAERI fabric's multiplier switches for the middle third of the
    // replay; the load-aware scheduler must migrate around it. Traffic
    // is conv3/conv4/conv5 — dense CONVs MAERI-64 wins outright, so
    // the healthy replay loads instance 0 and the fault-aware costs
    // (CONV mappings are strongly fault-sensitive) visibly drain it.
    let alex = maeri_dnn::zoo::alexnet();
    let pool: Vec<JobSpec> = ["alexnet_conv3", "alexnet_conv4", "alexnet_conv5"]
        .iter()
        .filter_map(|name| alex.layer(name))
        .filter_map(|layer| match layer {
            maeri_dnn::Layer::Conv(conv) => Some(JobSpec::Conv {
                layer: conv.clone(),
                fabric: maeri_serve::wire::FabricSpec::default(),
            }),
            _ => None,
        })
        .collect();
    let arrivals = mix_traffic("conv1_heavy", &pool);
    let horizon = arrivals.last().map_or(0, |a| a.at_us);
    let timeline = Timeline::seeded(0x0903, &fleet, horizon);
    let degraded_id = timeline.events.first().map_or(0, |e| e.instance);
    let quiet = simulate_fleet(
        &arrivals,
        &fleet,
        PlacementPolicy::LoadAware,
        &Timeline::quiet(),
        runtime,
    );
    let degraded = simulate_fleet(
        &arrivals,
        &fleet,
        PlacementPolicy::LoadAware,
        &timeline,
        runtime,
    );
    let from_us = timeline.events.first().map_or(0, |e| e.at_us);
    let until_us = timeline.events.last().map_or(0, |e| e.at_us);
    let mut fault = Table::new(vec![
        "instance",
        "backend",
        "in-window jobs (healthy)",
        "in-window jobs (degraded)",
        "total (degraded)",
    ]);
    for (before, after) in quiet.per_instance.iter().zip(&degraded.per_instance) {
        let marker = if before.id == degraded_id { " *" } else { "" };
        fault.row(vec![
            format!("{}{marker}", before.id),
            before.backend.clone(),
            quiet
                .jobs_on_during(before.id, from_us, until_us)
                .to_string(),
            degraded
                .jobs_on_during(before.id, from_us, until_us)
                .to_string(),
            after.jobs.to_string(),
        ]);
    }
    report::section(
        &format!(
            "Degrade/recover timeline (* instance {degraded_id} loses 30% of switches for t=[{}, {}) ms)",
            from_us / 1000,
            until_us / 1000,
        ),
        &fault,
    );

    runtime.note_phase(PhaseStats {
        name: "fleet_schedule".to_owned(),
        jobs: quiet.arrivals + degraded.arrivals + routes.len(),
        cache_hits: 0,
        wall: phase_start.elapsed(),
    });

    let migrated = quiet
        .jobs_on_during(degraded_id, from_us, until_us)
        .saturating_sub(degraded.jobs_on_during(degraded_id, from_us, until_us));
    report::summary(&[
        format!(
            "greedy routing sends alexnet_conv1 to the systolic array ({}), reproducing Figure 12's win",
            routes
                .first()
                .map_or_else(String::new, |r| r.backend.clone())
        ),
        format!(
            "heterogeneous {best_conv1_policy} beats the homogeneous all-MAERI fleet {}x on mean latency under the conv1-heavy mix",
            fmt_f64(best_conv1_speedup, 2)
        ),
        format!(
            "degradation moved {migrated} in-window jobs off instance {degraded_id} with {} lost ({} routed of {} arrivals)",
            degraded.unroutable, degraded.routed, degraded.arrivals
        ),
        "all clocks are virtual: identical bytes on every host and at every worker count".to_owned(),
    ]);
}
