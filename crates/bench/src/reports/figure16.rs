//! Regenerates Figure 16: area and power of MAERI's trees vs mesh,
//! crossbar and bus NoCs over a bandwidth sweep.

use crate::{experiments, report};
use maeri_noc::ppa::NocKind;
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 16 — NoC area/power vs provisioned bandwidth (64 terminals)",
        "MAERI's tree NoCs add minimal overhead compared to mesh and crossbar",
    );
    let rows = experiments::figure16();
    let mut area = Table::new(vec![
        "bandwidth (words/cyc)",
        "MAERI trees",
        "bus",
        "hier. bus",
        "mesh",
        "crossbar",
    ]);
    let mut power = area.clone();
    let pick = |row: &crate::experiments::Fig16Row, kind: NocKind| {
        row.designs
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("all four designs present")
            .1
    };
    for row in &rows {
        let cells = |f: &dyn Fn(NocKind) -> f64| {
            vec![
                row.bandwidth.to_string(),
                fmt_f64(f(NocKind::MaeriTrees), 1),
                fmt_f64(f(NocKind::Bus), 1),
                fmt_f64(f(NocKind::HierarchicalBus), 1),
                fmt_f64(f(NocKind::Mesh), 1),
                fmt_f64(f(NocKind::Crossbar), 1),
            ]
        };
        area.row(cells(&|k| pick(row, k).area_um2 / 1000.0));
        power.row(cells(&|k| pick(row, k).power_mw));
    }
    report::section("area (thousand um^2)", &area);
    report::section("power (mW at 200 MHz)", &power);

    let full = rows.last().expect("sweep is non-empty");
    let maeri = pick(full, NocKind::MaeriTrees);
    let xbar = pick(full, NocKind::Crossbar);
    let mesh = pick(full, NocKind::Mesh);
    report::summary(&[
        format!(
            "at full bandwidth the crossbar costs {:.0}x and the mesh {:.0}x MAERI's \
             tree area",
            xbar.area_um2 / maeri.area_um2,
            mesh.area_um2 / maeri.area_um2
        ),
        "paper: mesh and crossbar overheads are 'extremely high' while MAERI's \
         purpose-built trees stay minimal — reproduced at every bandwidth point"
            .to_owned(),
        "a single bus is cheaper than two trees but cannot scale bandwidth: replicated \
         buses cross over MAERI by 8 words/cycle"
            .to_owned(),
        "the Eyeriss-style hierarchical bus (separate scatter/gather copies) sits \
         between the flat bus and the mesh, as its silicon does"
            .to_owned(),
    ]);
}
