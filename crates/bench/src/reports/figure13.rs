//! Regenerates Figure 13: VGG-16 conv8 latency under weight sparsity
//! for MAERI (1x and 0.25x bandwidth) vs the fixed-cluster baseline.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 13 — sparse dataflow on VGG-16 conv8 (64 multiplier switches)",
        "MAERI keeps 73.8% utilization at 50% sparsity and pulls away from the \
         bus-limited cluster baseline",
    );
    let rows = experiments::figure13();
    let mut table = Table::new(vec![
        "zero weights",
        "MAERI 1x cycles",
        "MAERI 1x util",
        "MAERI 0.25x cycles",
        "cluster cycles",
        "cluster util",
        "speedup vs cluster",
    ]);
    for row in &rows {
        table.row(vec![
            format!("{}%", row.sparsity_pct),
            report::cycles(row.maeri_1x.cycles.as_u64()),
            fmt_pct(row.maeri_1x.utilization()),
            report::cycles(row.maeri_quarter.cycles.as_u64()),
            report::cycles(row.cluster.cycles.as_u64()),
            fmt_pct(row.cluster.utilization()),
            format!(
                "{}x",
                fmt_f64(
                    row.cluster.cycles.as_f64() / row.maeri_1x.cycles.as_f64(),
                    2
                )
            ),
        ]);
    }
    report::section("latency vs percentage of zero weights", &table);

    let last = rows.last().expect("six sparsity points");
    report::summary(&[
        format!(
            "paper: 73.8% MAERI utilization at 50% sparsity — measured {}",
            fmt_pct(last.maeri_1x.utilization())
        ),
        format!(
            "paper: 6.9x speedup at 50% sparsity — measured {:.2}x (same shape: the \
             baseline stays flat because its bus serializes psum collection while MAERI's \
             chubby ART scales)",
            last.cluster.cycles.as_f64() / last.maeri_1x.cycles.as_f64()
        ),
        "paper: thinning the tree to 0.25x bandwidth erodes the sparse win — reproduced \
         (the 0.25x curve tracks ~4x above 1x)"
            .to_owned(),
    ]);
}
