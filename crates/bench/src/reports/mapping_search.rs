//! Mapping search: the auto-tuner versus the built-in heuristics. The
//! other reports run each layer at the heuristic mapper's single named
//! point; this one sweeps the whole mapping space (VN partition,
//! replication cap, loop order) per layer, validates the analytic
//! frontier against the clocked simulator, and reports what tuning
//! buys — MAERI's reconfigurability argument made quantitative.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Mapping search — auto-tuned vs heuristic mappings",
        "Section 5's flexible-mapping claim: per-layer VN shapes beat one-size-fits-all",
    );
    let results = experiments::mapping_search();
    let mut table = Table::new(vec![
        "layer",
        "kind",
        "space",
        "scored",
        "heuristic",
        "tuned",
        "speedup",
        "tuned mapping",
        "rank",
    ]);
    for r in &results {
        table.row(vec![
            r.layer.clone(),
            r.kind.clone(),
            r.space.to_string(),
            r.counters.scored.to_string(),
            report::cycles(r.heuristic_cycles()),
            report::cycles(r.best_cycles()),
            format!("{}x", fmt_f64(r.speedup(), 3)),
            r.best.candidate.describe(),
            match r.counters.rank_agreement {
                Some(true) => "agree".to_owned(),
                Some(false) => "differ".to_owned(),
                None => "-".to_owned(),
            },
        ]);
    }
    report::section(
        "Exhaustive search, 64 switches, top-8 frontier trace-validated",
        &table,
    );
    let improved = results.iter().filter(|r| r.speedup() > 1.0).count();
    let best = results
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("search set is non-empty");
    let validated: u64 = results.iter().map(|r| r.counters.validated).sum();
    let agreements = results
        .iter()
        .filter(|r| r.counters.rank_agreement == Some(true))
        .count();
    let checks = results
        .iter()
        .filter(|r| r.counters.rank_agreement.is_some())
        .count();
    report::summary(&[
        format!(
            "tuned mappings match or beat the heuristic on all {} layers, \
             improving {improved} of them (heuristics are named points in the \
             same space, so tuning can never lose)",
            results.len()
        ),
        format!(
            "largest win: {} at {}x over the heuristic ({} -> {} cycles)",
            best.layer,
            fmt_f64(best.speedup(), 3),
            best.heuristic_cycles(),
            best.best_cycles()
        ),
        format!(
            "{validated} frontier members trace-validated; analytic and clocked \
             ranking picked the same winner on {agreements}/{checks} CONV searches"
        ),
    ]);
}
