//! Printable paper-artifact reports, one module per table/figure.
//!
//! Each module exposes `run()`, which prints the artifact's tables and
//! paper-vs-measured summary to stdout. The `src/bin/*` binaries are
//! thin wrappers over these functions, and `regen_all` replays the
//! whole [`REPORTS`] registry in-process — the single source of truth
//! for what "every paper artifact" means — through the shared
//! simulation runtime.

pub mod ablations;
pub mod energy;
pub mod fault_sweep;
pub mod figure11;
pub mod figure12;
pub mod figure13;
pub mod figure14;
pub mod figure15;
pub mod figure16;
pub mod figure17;
pub mod headline;
pub mod table1;
pub mod table3;
pub mod telemetry_profile;

/// Every report in regeneration order: `(name, printer)`.
pub const REPORTS: &[(&str, fn())] = &[
    ("table1", table1::run),
    ("table3", table3::run),
    ("figure11", figure11::run),
    ("figure12", figure12::run),
    ("figure13", figure13::run),
    ("figure14", figure14::run),
    ("figure15", figure15::run),
    ("figure16", figure16::run),
    ("figure17", figure17::run),
    ("headline", headline::run),
    ("ablations", ablations::run),
    ("energy", energy::run),
    ("fault_sweep", fault_sweep::run),
    ("telemetry_profile", telemetry_profile::run),
];

#[cfg(test)]
mod tests {
    use super::REPORTS;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(REPORTS.len(), 14);
        let mut names: Vec<&str> = REPORTS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REPORTS.len(), "duplicate report name");
    }
}
