//! Printable paper-artifact reports, one module per table/figure.
//!
//! Each module exposes `run()`, which prints the artifact's tables and
//! paper-vs-measured summary to stdout. The `src/bin/*` binaries are
//! thin wrappers over these functions, and `regen_all` replays the
//! whole [`REPORTS`] registry in-process — the single source of truth
//! for what "every paper artifact" means — through the shared
//! simulation runtime.

pub mod ablations;
pub mod chaos_recovery;
pub mod energy;
pub mod fault_sweep;
pub mod figure11;
pub mod figure12;
pub mod figure13;
pub mod figure14;
pub mod figure15;
pub mod figure16;
pub mod figure17;
pub mod fleet_schedule;
pub mod headline;
pub mod mapping_search;
pub mod service_load;
pub mod service_trace;
pub mod table1;
pub mod table3;
pub mod telemetry_profile;

/// Every report in regeneration order: `(id, name, printer)`. Report
/// IDs are stable handles quoted by `EXPERIMENTS.md`; they start at 1
/// and stay contiguous (a registry test enforces both).
pub const REPORTS: &[(usize, &str, fn())] = &[
    (1, "table1", table1::run),
    (2, "table3", table3::run),
    (3, "figure11", figure11::run),
    (4, "figure12", figure12::run),
    (5, "figure13", figure13::run),
    (6, "figure14", figure14::run),
    (7, "figure15", figure15::run),
    (8, "figure16", figure16::run),
    (9, "figure17", figure17::run),
    (10, "headline", headline::run),
    (11, "ablations", ablations::run),
    (12, "energy", energy::run),
    (13, "fault_sweep", fault_sweep::run),
    (14, "telemetry_profile", telemetry_profile::run),
    (15, "mapping_search", mapping_search::run),
    (16, "service_load", service_load::run),
    (17, "chaos_recovery", chaos_recovery::run),
    (18, "service_trace", service_trace::run),
    (19, "fleet_schedule", fleet_schedule::run),
];

#[cfg(test)]
mod tests {
    use super::REPORTS;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(REPORTS.len(), 19);
        let mut names: Vec<&str> = REPORTS.iter().map(|(_, n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REPORTS.len(), "duplicate report name");
    }

    #[test]
    fn report_ids_are_unique_and_contiguous() {
        for (position, (id, name, _)) in REPORTS.iter().enumerate() {
            assert_eq!(
                *id,
                position + 1,
                "report {name} must carry id {} (ids start at 1, no gaps)",
                position + 1
            );
        }
    }
}
