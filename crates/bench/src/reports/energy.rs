//! Energy analysis: the paper's motivation is performance *per watt* —
//! MAERI's weight-stationary switches, multicast distribution and leaf
//! forwarding cut SRAM traffic, which dominates accelerator energy.
//! This report prices the Figure 17 walk-through, whole networks, and
//! the DRAM traffic cross-layer fusion avoids.

use crate::{experiments, report};
use maeri::{ConvMapper, MaeriConfig, VnPolicy};
use maeri_baselines::{RowStationary, SystolicArray};
use maeri_dnn::zoo;
use maeri_ppa::EnergyModel;
use maeri_sim::table::{fmt_f64, Table};

fn walkthrough_energy() {
    // Price the Figure 17 example with measured traffic counts.
    let layer = zoo::fig17_example();
    let maeri_run = ConvMapper::new(MaeriConfig::paper_64())
        .run(&layer, VnPolicy::Auto)
        .expect("mappable");
    let sa_run = SystolicArray::unconstrained(8, 8).run_conv(&layer);
    let maeri_model = EnergyModel::maeri_64();
    let sa_model = EnergyModel::systolic_8x8();
    let mut table = Table::new(vec!["design", "SRAM reads", "energy (nJ)", "MACs/nJ"]);
    for (label, run, model) in [
        ("MAERI 64", &maeri_run, &maeri_model),
        ("systolic 8x8", &sa_run, &sa_model),
    ] {
        table.row(vec![
            label.to_owned(),
            report::cycles(run.sram_reads),
            fmt_f64(model.run_energy_nj(run), 1),
            fmt_f64(model.macs_per_nj(run), 2),
        ]);
    }
    report::section("Fig. 17 example priced by the 28nm energy model", &table);
}

fn network_energy() {
    let mut table = Table::new(vec![
        "network (conv layers)",
        "MAERI energy (uJ)",
        "systolic energy (uJ)",
        "row-stat energy (uJ)",
        "MAERI advantage",
    ]);
    let maeri = ConvMapper::new(MaeriConfig::paper_64());
    let sa = SystolicArray::new(8, 8, 8);
    let rs = RowStationary::new(8, 8, 8);
    let maeri_model = EnergyModel::maeri_64();
    let sa_model = EnergyModel::systolic_8x8();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        let mut e_maeri = 0.0;
        let mut e_sa = 0.0;
        let mut e_rs = 0.0;
        for conv in model.conv_layers() {
            e_maeri +=
                maeri_model.run_energy_nj(&maeri.run(conv, VnPolicy::Auto).expect("mappable"));
            e_sa += sa_model.run_energy_nj(&sa.run_conv(conv));
            e_rs += maeri_model.run_energy_nj(&rs.run_conv(conv));
        }
        let best_baseline = e_sa.min(e_rs);
        table.row(vec![
            model.name().to_owned(),
            fmt_f64(e_maeri / 1000.0, 1),
            fmt_f64(e_sa / 1000.0, 1),
            fmt_f64(e_rs / 1000.0, 1),
            format!("{}x", fmt_f64(best_baseline / e_maeri, 2)),
        ]);
    }
    report::section(
        "whole-network convolution energy (64 compute units)",
        &table,
    );
}

fn fusion_energy() {
    let model = EnergyModel::maeri_64();
    let mut table = Table::new(vec!["map", "DRAM words avoided", "energy saved (uJ)"]);
    for row in experiments::figure14() {
        let words = row.maeri.extra.get("dram_bytes_saved") / 2;
        table.row(vec![
            row.name.clone(),
            report::cycles(words),
            fmt_f64(model.dram_energy_nj(words) / 1000.0, 1),
        ]);
    }
    report::section(
        "cross-layer fusion: DRAM energy avoided by keeping intermediates on chip",
        &table,
    );
}

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Energy — pricing the traffic the figures count",
        "Section 1/6.3 motivation: fewer SRAM reads is the energy story",
    );
    walkthrough_energy();
    network_energy();
    fusion_energy();
    report::summary(&[
        "MAERI's SRAM-read advantage (61-65% fewer on the worked example) converts to a \
         proportional energy advantage because a 16-bit SRAM word costs ~4x a MAC"
            .to_owned(),
        "fusion savings are dominated by DRAM at ~320 pJ/word — two orders above SRAM — \
         which is why the fused-layer idea matters even when cycle speedups are modest"
            .to_owned(),
    ]);
}
