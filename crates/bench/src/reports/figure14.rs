//! Regenerates Figure 14: cross-layer (fused) dataflow speedups over
//! the fixed-cluster baseline on AlexNet convolution chains.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 14 — cross-layer fused dataflows (64 PEs)",
        "MAERI 1.08-1.5x speedup over four rigid 4x4 clusters on fused AlexNet convs",
    );
    let rows = experiments::figure14();
    let mut table = Table::new(vec![
        "map",
        "fused layers",
        "MAERI cycles",
        "MAERI util",
        "cluster cycles",
        "cluster util",
        "speedup",
    ]);
    for row in &rows {
        table.row(vec![
            row.name.clone(),
            row.layers
                .iter()
                .map(|l| l.trim_start_matches("alexnet_conv").to_owned())
                .collect::<Vec<_>>()
                .join("+"),
            report::cycles(row.maeri.cycles.as_u64()),
            fmt_pct(row.maeri.utilization()),
            report::cycles(row.cluster.cycles.as_u64()),
            fmt_pct(row.cluster.utilization()),
            format!("{}x", fmt_f64(row.speedup(), 2)),
        ]);
    }
    report::section("fused AlexNet convolution chains", &table);

    let speedups: Vec<f64> = rows.iter().map(experiments::Fig14Row::speedup).collect();
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(f64::MIN, f64::max);
    report::summary(&[
        format!(
            "paper: 1.08-1.5x speedup across MapA-E — measured {:.2}x-{:.2}x",
            min, max
        ),
        "paper: fixed clusters strand PEs (e.g. 9 of 16 busy for 3x3 slices) while \
         MAERI sizes every stage's virtual neurons freely — visible in the utilization \
         columns"
            .to_owned(),
        "the ordering matches the paper exactly (MapC largest, MapA smallest); our \
         magnitudes run ~1.5x above the paper's band — see EXPERIMENTS.md"
            .to_owned(),
    ]);
}
