//! Chaos recovery: the serving stack's crash-safety invariant under
//! deterministic fault injection.
//!
//! Each row injects one `maeri_serve::chaos::FaultPoint` — constructed
//! on-disk wreckage (torn journal tails, corrupted store records,
//! killed processes caught between journal append, store append, and
//! tombstone) or a live hostile input (wedged workers, malformed wire
//! frames) — then restarts the service and measures recovery. The
//! invariant in every row is the same: **lost = 0**; no job a caller
//! was ever acknowledged for disappears.
//!
//! Every printed number is crash-invariant: scenario wreckage is
//! constructed byte-for-byte from seeds, and live scenarios count only
//! structured outcomes — so the report is byte-identical on every
//! host at every worker count.

use std::time::Instant;

use maeri_runtime::{PhaseStats, Runtime};
use maeri_serve::chaos::{self, FaultPoint};
use maeri_sim::table::Table;

use crate::report;

/// The harness seed; changing it changes the wreckage, not the
/// invariant.
const SEED: u64 = 0x0701;

/// Prints this report to stdout.
///
/// # Panics
///
/// Panics if the scratch directory cannot be created — the report owns
/// its own temp path.
pub fn run() {
    let phase_start = Instant::now();
    report::header(
        "Chaos recovery — crash-safe serving under fault injection",
        "Write-ahead admission journal, recovery replay, deadlines, and breaker quarantine",
    );
    let dir = std::env::temp_dir().join(format!("maeri-chaos-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the chaos scratch directory failed");

    let outcomes: Vec<chaos::ChaosOutcome> = FaultPoint::ALL
        .iter()
        .map(|&fault| chaos::run_scenario(fault, &dir, SEED))
        .collect();

    let mut table = Table::new(vec![
        "fault",
        "acked",
        "replayed",
        "from store",
        "resolved",
        "lost",
        "detail",
    ]);
    for outcome in &outcomes {
        table.row(vec![
            outcome.fault.name().to_owned(),
            outcome.acknowledged.to_string(),
            outcome.orphans_replayed.to_string(),
            outcome.recovered_from_store.to_string(),
            outcome.resolved.to_string(),
            outcome.lost.to_string(),
            outcome.detail.clone(),
        ]);
    }
    report::section(
        "Fault injection matrix (seeded wreckage, restart, replay)",
        &table,
    );
    let _ = std::fs::remove_dir_all(&dir);

    let acked: u64 = outcomes.iter().map(|o| o.acknowledged).sum();
    let resolved: u64 = outcomes.iter().map(|o| o.resolved).sum();
    let lost: u64 = outcomes.iter().map(|o| o.lost).sum();
    assert_eq!(lost, 0, "an acknowledged job was lost: {outcomes:?}");

    // The scenarios run private services; attribute the report's wall
    // time on the global runtime so `regen_all --json` surfaces it as
    // a phase alongside the figure sweeps.
    Runtime::global().note_phase(PhaseStats {
        name: "chaos_recovery".to_owned(),
        jobs: usize::try_from(acked).unwrap_or(0),
        cache_hits: usize::try_from(outcomes.iter().map(|o| o.recovered_from_store).sum::<u64>())
            .unwrap_or(0),
        wall: phase_start.elapsed(),
    });

    report::summary(&[
        format!(
            "{} fault points injected; {acked} acknowledged jobs, {resolved} resolved after \
             recovery, {lost} lost (invariant: zero acknowledged loss)",
            FaultPoint::ALL.len()
        ),
        "kills around the journal append replay orphans under their original ids".to_owned(),
        "results that reached the store before the crash answer replay without re-running"
            .to_owned(),
        "torn journal tails and rotted store records are trimmed/skipped, never fatal".to_owned(),
        "wedged workers become structured timeouts; the circuit breaker quarantines the tenant"
            .to_owned(),
        "seeded wire mutations always produce structured errors, never a panic".to_owned(),
        "all wreckage is seed-constructed: this report is byte-identical on every host".to_owned(),
    ]);
}
