//! Regenerates Table 3: the five design points (Eyeriss, systolic
//! comp/area match, MAERI comp/area match) from the 28 nm PPA model.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Table 3 — implementation design points",
        "Eyeriss 6 mm²; systolic 2.62 mm² / 1192 PE; MAERI 3.84 mm² / 374 MS at 28 nm",
    );
    let mut table = Table::new(vec![
        "design",
        "PEs (MultSwitches)",
        "local SRAM/PE",
        "prefetch buffer",
        "area (mm^2)",
        "power (mW)",
    ]);
    let labels = [
        "Eyeriss",
        "SysArray (comp)",
        "SysArray (area)",
        "MAERI (comp)",
        "MAERI (area)",
    ];
    for (label, point) in labels.iter().zip(experiments::table3()) {
        table.row(vec![
            (*label).to_owned(),
            point.num_pes.to_string(),
            format!("{}B", point.local_bytes),
            format!("{}KB", point.pb_kb),
            fmt_f64(point.area_um2() / 1e6, 2),
            fmt_f64(point.power_mw(), 0),
        ]);
    }
    report::section("design points (28 nm, 200 MHz)", &table);
    report::summary(&[
        "paper: 6.00 / 2.62 / 6.00 / 3.84 / 6.00 mm² — matched by calibration".to_owned(),
        "paper: 1192 systolic PEs and 374 MAERI switches at 6 mm² — matched".to_owned(),
        "paper: MAERI houses 2.23x and systolic 7.09x more compute than Eyeriss".to_owned(),
    ]);
}
