//! Regenerates Figure 15: multiplier utilization of ART vs fat tree vs
//! four 16-wide plain adder trees as the virtual-neuron size sweeps.

use crate::{experiments, report};
use maeri_sim::table::{fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 15 — reduction-network utilization vs VN size (64 PEs)",
        "ART stays uniformly high; fat tree drops at non-powers-of-two; plain trees \
         peak only at the tree width",
    );
    let curves = experiments::figure15();
    let mut table = Table::new(vec!["VN size", "ART", "fat tree", "4x16 plain trees"]);
    // Print a representative subset of the sweep (every size up to 20,
    // then powers of two and the paper's interesting points).
    let interesting: Vec<usize> = (2..=20).chain([24, 27, 32, 33, 48, 63, 64]).collect();
    for vn in interesting {
        let mut cells = vec![vn.to_string()];
        for (_, curve) in &curves {
            let util = curve
                .iter()
                .find(|(size, _)| *size == vn)
                .map_or(0.0, |(_, u)| *u);
            cells.push(fmt_pct(util));
        }
        table.row(cells);
    }
    report::section("utilization by VN size", &table);

    let summarize = |curve: &[(usize, f64)]| {
        let min = curve.iter().map(|(_, u)| *u).fold(f64::INFINITY, f64::min);
        let mean = curve.iter().map(|(_, u)| *u).sum::<f64>() / curve.len() as f64;
        (min, mean)
    };
    let mut lines = Vec::new();
    for (name, curve) in &curves {
        let (min, mean) = summarize(curve);
        lines.push(format!(
            "{name}: mean utilization {}, worst case {}",
            fmt_pct(mean),
            fmt_pct(min)
        ));
    }
    lines.push(
        "paper: fat tree equals ART exactly at power-of-two VN sizes and drops \
         elsewhere; plain adder trees reach 100% only at VN size 16 — both reproduced"
            .to_owned(),
    );
    report::summary(&lines);
}
