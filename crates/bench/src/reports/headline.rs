//! Regenerates the abstract's headline claim: "8-459% better
//! utilization across multiple dataflow mappings over baselines with
//! rigid NoC fabrics".

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Headline — utilization improvement across all dataflow mappings",
        "abstract: 8-459% better utilization vs rigid-NoC baselines",
    );
    let improvements = experiments::headline_improvements();
    let mut table = Table::new(vec![
        "experiment",
        "MAERI util",
        "baseline util",
        "improvement",
    ]);
    for (label, maeri, baseline, pct) in &improvements {
        table.row(vec![
            label.clone(),
            fmt_pct(*maeri),
            fmt_pct(*baseline),
            format!("{}%", fmt_f64(*pct, 0)),
        ]);
    }
    report::section("per-experiment utilization comparison", &table);

    let positive: Vec<f64> = improvements
        .iter()
        .map(|(_, _, _, pct)| *pct)
        .filter(|&p| p > 0.0)
        .collect();
    let min_pos = positive.iter().copied().fold(f64::INFINITY, f64::min);
    let max = improvements
        .iter()
        .map(|(_, _, _, pct)| *pct)
        .fold(f64::MIN, f64::max);
    let losses = improvements.iter().filter(|(_, _, _, p)| *p < 0.0).count();
    report::summary(&[
        format!(
            "paper: 8-459% — measured positive range {:.0}%-{:.0}% over {} comparisons",
            min_pos,
            max,
            improvements.len()
        ),
        format!(
            "{losses} comparison(s) favor a baseline (AlexNet C1, where our model charges \
             MAERI's stride-4 input bandwidth explicitly; see EXPERIMENTS.md)"
        ),
    ]);
}
