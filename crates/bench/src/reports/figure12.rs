//! Regenerates Figure 12: dense-CONV latency and utilization of the
//! systolic array, row-stationary design and MAERI at 64 compute units.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, fmt_pct, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 12 — dense CONV latency and utilization (64 PEs)",
        "MAERI ~72.4% average speedup, ~95% utilization on 3x3-dominated layers",
    );
    let rows = experiments::figure12();
    let mut table = Table::new(vec![
        "layer",
        "MAERI lat (norm)",
        "MAERI util",
        "SysArr lat (norm)",
        "SysArr util",
        "RowStat lat (norm)",
        "RowStat util",
    ]);
    for row in &rows {
        let norm = |cycles: u64| fmt_f64(cycles as f64 / row.ideal_cycles.max(1) as f64, 2);
        table.row(vec![
            row.layer.clone(),
            norm(row.maeri.cycles.as_u64()),
            fmt_pct(row.maeri.utilization()),
            norm(row.systolic.cycles.as_u64()),
            fmt_pct(row.systolic.utilization()),
            norm(row.row_stationary.cycles.as_u64()),
            fmt_pct(row.row_stationary.utilization()),
        ]);
    }
    report::section(
        "latency normalized to an ideal 64-PE accelerator (MACs / 64)",
        &table,
    );

    let mean = experiments::figure12_mean_speedup(&rows);
    let vgg_utils: Vec<f64> = rows
        .iter()
        .filter(|r| r.layer.contains("vgg") || r.layer.contains("conv3"))
        .map(|r| r.maeri.utilization())
        .collect();
    let mean_vgg = maeri_sim::util::mean(&vgg_utils).unwrap_or(0.0);
    report::summary(&[
        format!(
            "paper: 72.4% average speedup — measured mean speedup over the systolic array: \
             {:.1}%",
            (mean - 1.0) * 100.0
        ),
        format!(
            "paper: ~95% average multiplier utilization — measured on 3x3 layers: {}",
            fmt_pct(mean_vgg)
        ),
        "paper: AlexNet C1 (11x11, stride 4) and C2 (5x5) are adversarial for MAERI — \
         reproduced (C1 is input-bandwidth bound in our model, making it the one layer \
         where a baseline wins)"
            .to_owned(),
    ]);
}
