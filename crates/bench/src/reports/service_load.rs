//! Service load: the batch-inference service under seeded Poisson
//! traffic, on a virtual clock.
//!
//! Three replays through the real admission control, verifier,
//! persistent store, and runtime — timed virtually so every number is
//! deterministic (see `maeri_serve::loadsim`):
//!
//! * **cold** — an empty store; every distinct job simulates once;
//! * **warm restart** — the same traffic against a *new* runtime on
//!   the reopened store: repeats must be answered from disk;
//! * **burst** — one slow virtual server behind a tight per-tenant
//!   bound: admission control must shed load instead of queueing
//!   without bound.
//!
//! A final section drives the *live* `Service` (worker threads, store
//! fast path) sequentially over the same trace as a cross-check; only
//! its deterministic counters are printed, never wall-clock time.

use std::sync::Arc;
use std::time::Instant;

use maeri_runtime::{PhaseStats, Runtime};
use maeri_serve::loadsim::{self, LoadOutcome, LoadScenario};
use maeri_serve::service::{ServeConfig, Service};
use maeri_serve::store::ResultStore;
use maeri_serve::traffic::{self, TrafficConfig};
use maeri_sim::table::{fmt_pct, Table};

use crate::report;

/// The steady traffic trace replayed cold, warm, and live.
fn steady_traffic() -> Vec<traffic::Arrival> {
    traffic::generate(&TrafficConfig {
        seed: 0x0601,
        arrivals: 160,
        tenants: 4,
        mean_interarrival_us: 300,
        random_fraction: 0.25,
    })
}

/// The overload trace for the burst phase: one tenant, all random
/// layers, arrivals ~8x faster than the steady trace.
fn burst_traffic() -> Vec<traffic::Arrival> {
    traffic::generate(&TrafficConfig {
        seed: 0x0602,
        arrivals: 120,
        tenants: 2,
        mean_interarrival_us: 40,
        random_fraction: 1.0,
    })
}

fn phase_row(table: &mut Table, phase: &str, outcome: &LoadOutcome) {
    let mut latency = outcome.latency_us.clone();
    let mut pct = |p: f64| latency.percentile(p).unwrap_or(0).to_string();
    table.row(vec![
        phase.to_owned(),
        outcome.arrivals.to_string(),
        outcome.admitted.to_string(),
        outcome.rejected.to_string(),
        fmt_pct(outcome.hit_rate().unwrap_or(0.0)),
        pct(50.0),
        pct(99.0),
        pct(99.9),
        (outcome.makespan_us / 1000).to_string(),
    ]);
}

/// Prints this report to stdout.
///
/// # Panics
///
/// Panics if the scratch store directory cannot be created — the
/// report owns its own temp path.
pub fn run() {
    let phase_start = Instant::now();
    report::header(
        "Service load — async batch-inference serving",
        "Section 7 workloads served through admission control and a persistent result cache",
    );
    let store_dir = std::env::temp_dir().join(format!("maeri-service-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    std::fs::create_dir_all(&store_dir).expect("creating the scratch store directory failed");
    let store_path = store_dir.join("results.log");

    let steady = steady_traffic();
    let scenario = LoadScenario::default();

    // Phase 1: cold store, fresh runtime.
    let (cold, cold_entries) = {
        let (store, _) = ResultStore::open(&store_path).expect("open cold store");
        let runtime = Runtime::new(1);
        let outcome = loadsim::simulate(&steady, &scenario, &runtime, Some(&store));
        (outcome, store.len())
    };

    // Phase 2: warm restart — new runtime (empty cache), reopened log.
    let (warm, recovery) = {
        let (store, recovery) = ResultStore::open(&store_path).expect("reopen store");
        let runtime = Runtime::new(1);
        let outcome = loadsim::simulate(&steady, &scenario, &runtime, Some(&store));
        (outcome, recovery)
    };

    // Phase 3: burst against one slow server, tight tenant bound, no
    // store — admission control is the only defence.
    let burst = loadsim::simulate(
        &burst_traffic(),
        &LoadScenario {
            virtual_workers: 1,
            per_tenant_depth: 4,
            hit_cost_us: 25,
        },
        &Runtime::new(1),
        None,
    );

    let mut table = Table::new(vec![
        "phase",
        "arrivals",
        "admitted",
        "rejected",
        "hit rate",
        "p50 us",
        "p99 us",
        "p999 us",
        "makespan ms",
    ]);
    phase_row(&mut table, "cold", &cold);
    phase_row(&mut table, "warm restart", &warm);
    phase_row(&mut table, "burst (depth 4)", &burst);
    report::section(
        "Virtual-time replay: 4 servers, per-tenant depth 64 (burst: 1 server, depth 4)",
        &table,
    );

    // Cross-check: the live service (threads, condvars, store fast
    // path) driven sequentially over the same trace. Sequential
    // driving keeps every counter deterministic.
    let service = Service::start(
        ServeConfig {
            workers: 2,
            per_tenant_depth: 64,
            store_path: Some(store_path.clone()),
            ..ServeConfig::default()
        },
        Arc::new(Runtime::new(1)),
    )
    .expect("start live service");
    let mut live_done = 0u64;
    for arrival in &steady {
        let job = arrival
            .spec
            .to_sim_job()
            .expect("generated specs are valid");
        let id = service
            .submit(&arrival.tenant, job)
            .expect("steady traffic fits a depth-64 bound");
        if service.wait(id).expect("submitted ids resolve").ok {
            live_done += 1;
        }
    }
    let live = service.stats();
    let mut live_table = Table::new(vec![
        "submitted",
        "admitted",
        "rejected",
        "store hits",
        "hit rate",
        "ok",
        "store entries",
    ]);
    live_table.row(vec![
        live.submitted.to_string(),
        live.admitted.to_string(),
        (live.rejected_backpressure + live.rejected_invalid).to_string(),
        live.store_hits.to_string(),
        fmt_pct(live.service_hit_rate().unwrap_or(0.0)),
        live_done.to_string(),
        live.store_entries.to_string(),
    ]);
    report::section(
        "Live service cross-check (sequential drive over the warm store)",
        &live_table,
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&store_dir);

    // The replays ran on private runtimes; attribute the report's wall
    // time on the global one so `regen_all --json` surfaces it as a
    // phase alongside the figure sweeps.
    Runtime::global().note_phase(PhaseStats {
        name: "service_load".to_owned(),
        jobs: cold.arrivals + warm.arrivals + burst.arrivals + steady.len(),
        cache_hits: cold.hits + warm.hits + usize::try_from(live.store_hits).unwrap_or(0),
        wall: phase_start.elapsed(),
    });

    report::summary(&[
        format!(
            "cold phase simulated {} distinct jobs into the store ({} arrivals, {} repeat hits)",
            cold_entries,
            cold.arrivals,
            cold.hits
        ),
        format!(
            "warm restart recovered {} entries and answered {} of traffic from disk (target > 90%)",
            recovery.entries,
            fmt_pct(warm.hit_rate().unwrap_or(0.0))
        ),
        format!(
            "burst phase shed {} of {} arrivals via per-tenant backpressure instead of unbounded queues",
            burst.rejected, burst.arrivals
        ),
        format!(
            "live service agreed: {} served from store/cache at admission, zero backpressure rejects",
            fmt_pct(live.service_hit_rate().unwrap_or(0.0))
        ),
        "latencies are virtual-time (64 cycles/us drain): byte-identical on every host".to_owned(),
    ]);
}
