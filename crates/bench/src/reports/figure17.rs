//! Regenerates Figure 17 / Section 6.3: the by-hand systolic-array vs
//! MAERI walk-through, plus the 256x256 VGG-16 SRAM-read scale-up.

use crate::{experiments, report};
use maeri_sim::table::{fmt_f64, Table};

/// Prints this report to stdout.
pub fn run() {
    report::header(
        "Figure 17 — systolic array vs MAERI walk-through",
        "eight 3x3x3 filters over a 5x5x3 input: SA 156 cycles / 1323 reads, \
         MAERI 143 cycles / 516 reads",
    );
    let rep = experiments::figure17();

    let mut table = Table::new(vec!["design", "cycles", "SRAM reads"]);
    for result in [&rep.systolic, &rep.maeri, &rep.maeri_paper_stated] {
        table.row(vec![
            result.design.clone(),
            report::cycles(result.cycles),
            report::cycles(result.sram_reads),
        ]);
    }
    report::section("worked example (Fig. 17 layer)", &table);

    for result in [&rep.systolic, &rep.maeri, &rep.maeri_paper_stated] {
        println!("\n{} derivation:", result.design);
        for line in &result.breakdown {
            println!("  {line}");
        }
    }

    let cycle_gain = 1.0 - rep.maeri.cycles as f64 / rep.systolic.cycles as f64;
    let read_gain = 1.0 - rep.maeri.sram_reads as f64 / rep.systolic.sram_reads as f64;
    report::summary(&[
        format!(
            "paper: 9% fewer cycles, 65% fewer reads — measured {:.0}% and {:.0}% \
             (consistent-bandwidth rule: 140 cycles; paper-stated decomposition: 143)",
            cycle_gain * 100.0,
            read_gain * 100.0
        ),
        format!(
            "paper: 6.3x fewer SRAM reads for 256x256 MAERI vs 256x256 systolic on \
             VGG-16 — measured {}x over all 13 conv layers",
            fmt_f64(rep.vgg16_read_ratio_256, 2)
        ),
        "the 143-vs-140 discrepancy in the paper's own arithmetic is documented in \
         EXPERIMENTS.md"
            .to_owned(),
    ]);
}
