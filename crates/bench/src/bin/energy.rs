//! Energy analysis: the paper's motivation is performance *per watt* —
//! MAERI's weight-stationary switches, multicast distribution and leaf
//! (thin wrapper over `maeri_bench::reports::energy`).

fn main() {
    maeri_bench::reports::energy::run();
}
