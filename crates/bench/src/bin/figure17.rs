//! Regenerates Figure 17 / Section 6.3: the by-hand systolic-array vs
//! MAERI walk-through, plus the 256x256 VGG-16 SRAM-read scale-up.
//! (thin wrapper over `maeri_bench::reports::figure17`).

fn main() {
    maeri_bench::reports::figure17::run();
}
