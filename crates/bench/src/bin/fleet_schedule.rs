//! Prints the heterogeneous fleet-scheduling report: per-layer
//! placement over mixed accelerators, policy comparison, and the
//! degraded-mode timeline.

fn main() {
    maeri_bench::reports::fleet_schedule::run();
}
