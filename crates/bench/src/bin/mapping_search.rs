//! Prints the mapping-search report: the auto-tuner versus the
//! heuristic mappers across the DNN zoo's layer kinds.

fn main() {
    maeri_bench::reports::mapping_search::run();
}
