//! Regenerates Figure 15: multiplier utilization of ART vs fat tree vs
//! four 16-wide plain adder trees as the virtual-neuron size sweeps.
//! (thin wrapper over `maeri_bench::reports::figure15`).

fn main() {
    maeri_bench::reports::figure15::run();
}
