//! Service trace: request-path spans over a seeded virtual-time replay
//! (thin wrapper over `maeri_bench::reports::service_trace`).

fn main() {
    maeri_bench::reports::service_trace::run();
}
