//! Regenerates every paper artifact in one run: executes each sibling
//! report binary in order and streams their output, so
//! `cargo run --release -p maeri-bench --bin regen_all > reports.txt`
//! rebuilds the complete paper-vs-measured record behind
//! `EXPERIMENTS.md`.

use std::process::Command;

const REPORTS: &[&str] = &[
    "table1", "table3", "figure11", "figure12", "figure13", "figure14", "figure15", "figure16",
    "figure17", "headline", "ablations", "energy",
];

fn main() {
    let current = std::env::current_exe().expect("current executable path");
    let dir = current.parent().expect("executable directory");
    let mut failures = Vec::new();
    for report in REPORTS {
        let path = dir.join(report);
        if !path.exists() {
            eprintln!("skipping {report}: binary not built (run with --bins)");
            failures.push(*report);
            continue;
        }
        match Command::new(&path).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{report} exited with {status}");
                failures.push(*report);
            }
            Err(err) => {
                eprintln!("failed to launch {report}: {err}");
                failures.push(*report);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("regenerated all {} reports", REPORTS.len());
    } else {
        eprintln!("failed reports: {failures:?}");
        std::process::exit(1);
    }
}
