//! Regenerates every paper artifact in one run, in-process: replays the
//! [`maeri_bench::reports::REPORTS`] registry (the same functions the
//! sibling report binaries wrap) through the shared simulation runtime,
//! so the sweeps parallelize across workers and repeated points (the
//! headline report re-visits the figure sweeps) are served from cache.
//!
//! `cargo run --release -p maeri-bench --bin regen_all > reports.txt`
//! rebuilds the complete paper-vs-measured record behind
//! `EXPERIMENTS.md`. Output is bit-identical to running the report
//! binaries serially; a runtime-metrics summary is appended to stderr
//! unless `MAERI_RUNTIME_QUIET` is set. With `--json` the summary is
//! instead printed as a single JSON line on stdout (the last line of
//! output, so `tail -n 1 | python3 -m json.tool` parses it). Set
//! `MAERI_RUNTIME_WORKERS` to control parallelism.

use std::time::Instant;

use maeri_bench::reports::REPORTS;
use maeri_runtime::Runtime;

fn main() {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("usage: regen_all [--json]  (unknown argument {other:?})");
                std::process::exit(2);
            }
        }
    }

    let start = Instant::now();
    for (_, _, run) in REPORTS {
        run();
        println!();
    }
    println!("regenerated all {} reports", REPORTS.len());

    let snapshot = Runtime::global().metrics();
    if json {
        // One line, last on stdout, so scripts can split it off the
        // human-readable reports above.
        println!("{}", snapshot.to_json().render());
    } else if std::env::var_os("MAERI_RUNTIME_QUIET").is_none() {
        // Stderr, so piping stdout to a file captures only the reports.
        eprintln!("\n{}", snapshot.render().trim_end());
        eprintln!("  workers: {}", Runtime::global().num_workers());
        eprintln!("  regen_all wall: {:.2?}", start.elapsed());
    }
}
