//! Regenerates every paper artifact in one run, in-process: replays the
//! [`maeri_bench::reports::REPORTS`] registry (the same functions the
//! sibling report binaries wrap) through the shared simulation runtime,
//! so the sweeps parallelize across workers and repeated points (the
//! headline report re-visits the figure sweeps) are served from cache.
//!
//! `cargo run --release -p maeri-bench --bin regen_all > reports.txt`
//! rebuilds the complete paper-vs-measured record behind
//! `EXPERIMENTS.md`. Output is bit-identical to running the report
//! binaries serially; a runtime-metrics summary is appended to stderr
//! unless `MAERI_RUNTIME_QUIET` is set. With `--json` the summary is
//! instead printed as a single JSON line on stdout (the last line of
//! output, so `tail -n 1 | python3 -m json.tool` parses it), and the
//! determinism analyzer (`maeri-analyze`) runs over the workspace
//! sources so the snapshot also records the code-level gate: files
//! parsed, findings per rule, suppressions in use. Set
//! `MAERI_RUNTIME_WORKERS` to control parallelism.

use std::path::Path;
use std::time::Instant;

use maeri_bench::reports::REPORTS;
use maeri_runtime::{PhaseStats, Runtime};
use maeri_telemetry::json::JsonValue;

fn main() {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("usage: regen_all [--json]  (unknown argument {other:?})");
                std::process::exit(2);
            }
        }
    }

    let start = Instant::now();
    for (_, _, run) in REPORTS {
        run();
        println!();
    }
    println!("regenerated all {} reports", REPORTS.len());

    if json {
        // One line, last on stdout, so scripts can split it off the
        // human-readable reports above. The analyzer runs first so its
        // phase entry and stats land in the same snapshot.
        let analyzer = analyzer_json();
        let snapshot = Runtime::global().metrics();
        let doc = match analyzer {
            Some(obj) => snapshot.to_json().with("analyzer", obj),
            None => snapshot.to_json(),
        };
        println!("{}", doc.render());
    } else if std::env::var_os("MAERI_RUNTIME_QUIET").is_none() {
        // Stderr, so piping stdout to a file captures only the reports.
        let snapshot = Runtime::global().metrics();
        eprintln!("\n{}", snapshot.render().trim_end());
        eprintln!("  workers: {}", Runtime::global().num_workers());
        eprintln!("  regen_all wall: {:.2?}", start.elapsed());
    }
}

/// Runs the determinism analyzer over the workspace sources and
/// returns its stats as a JSON object, noting the pass as a runtime
/// phase. `None` when the sources are not present (for instance, a
/// binary shipped without the repo checkout).
fn analyzer_json() -> Option<JsonValue> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2)?;
    let phase_start = Instant::now();
    let analysis = maeri_analyze::analyze_workspace(root).ok()?;
    if analysis.stats.files == 0 {
        return None;
    }
    Runtime::global().note_phase(PhaseStats {
        name: "analyze".to_owned(),
        jobs: analysis.stats.files,
        cache_hits: 0,
        wall: phase_start.elapsed(),
    });
    let mut per_rule = JsonValue::object();
    for (rule, count) in analysis.per_rule() {
        per_rule = per_rule.with(rule.name(), JsonValue::UInt(count as u64));
    }
    Some(
        JsonValue::object()
            .with("files", JsonValue::UInt(analysis.stats.files as u64))
            .with(
                "functions",
                JsonValue::UInt(analysis.stats.functions as u64),
            )
            .with(
                "output_functions",
                JsonValue::UInt(analysis.stats.output_functions as u64),
            )
            .with(
                "suppressions_in_use",
                JsonValue::UInt(analysis.stats.suppressions_in_use as u64),
            )
            .with("findings", per_rule)
            .with("clean", JsonValue::Bool(analysis.clean())),
    )
}
