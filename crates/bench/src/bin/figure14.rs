//! Regenerates Figure 14: cross-layer (fused) dataflow speedups over
//! the fixed-cluster baseline on AlexNet convolution chains.
//! (thin wrapper over `maeri_bench::reports::figure14`).

fn main() {
    maeri_bench::reports::figure14::run();
}
