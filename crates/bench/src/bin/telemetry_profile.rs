//! Telemetry profile: cycle-level fabric observability for AlexNet's
//! convolutions (thin wrapper over
//! `maeri_bench::reports::telemetry_profile`).

fn main() {
    maeri_bench::reports::telemetry_profile::run();
}
