//! Regenerates Table 3: the five design points (Eyeriss, systolic
//! comp/area match, MAERI comp/area match) from the 28 nm PPA model.
//! (thin wrapper over `maeri_bench::reports::table3`).

fn main() {
    maeri_bench::reports::table3::run();
}
