//! Fault sweep: yield and slowdown on a fabric with dead multiplier
//! switches (thin wrapper over `maeri_bench::reports::fault_sweep`).

fn main() {
    maeri_bench::reports::fault_sweep::run();
}
