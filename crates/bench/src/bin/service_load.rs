//! Service load: the batch-inference service under seeded Poisson
//! traffic on a virtual clock (thin wrapper over
//! `maeri_bench::reports::service_load`).

fn main() {
    maeri_bench::reports::service_load::run();
}
