//! Regenerates Table 1: parameters of recent DNNs, derived from the
//! model zoo.
//! (thin wrapper over `maeri_bench::reports::table1`).

fn main() {
    maeri_bench::reports::table1::run();
}
