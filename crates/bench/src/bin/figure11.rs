//! Regenerates Figure 11: area/power breakdowns of the design points
//! (a-d) and core-area scaling versus PE count (e).
//! (thin wrapper over `maeri_bench::reports::figure11`).

fn main() {
    maeri_bench::reports::figure11::run();
}
