//! `mapcheck` — a small CLI for exploring how a convolution maps onto
//! a MAERI instance: plan, cost, and the baseline comparison, from
//! command-line dimensions.
//!
//! ```text
//! Usage: mapcheck [options]
//!   --switches N      multiplier switches (power of two, default 64)
//!   --bandwidth N     chubby root bandwidth, both trees (default 8)
//!   --in-channels C   input channels (default 3)
//!   --size HW         square input size (default 32)
//!   --filters K       output channels (default 16)
//!   --kernel K        square kernel (default 3)
//!   --stride S        stride (default 1)
//!   --pad P           padding (default kernel/2)
//!   --sparsity F      zero-weight fraction 0.0-1.0 (default 0 = dense)
//! ```

use maeri::{ConvMapper, MaeriConfig, SparseConvMapper, VnPolicy};
use maeri_baselines::{RowStationary, SystolicArray};
use maeri_dnn::{ConvLayer, WeightMask};
use maeri_sim::SimRng;

#[derive(Debug)]
struct Args {
    switches: usize,
    bandwidth: usize,
    in_channels: usize,
    size: usize,
    filters: usize,
    kernel: usize,
    stride: usize,
    pad: Option<usize>,
    sparsity: f64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            switches: 64,
            bandwidth: 8,
            in_channels: 3,
            size: 32,
            filters: 16,
            kernel: 3,
            stride: 1,
            pad: None,
            sparsity: 0.0,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            if flag == "--help" || flag == "-h" {
                return Err("help".to_owned());
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            let parse_usize = |v: &str| v.parse::<usize>().map_err(|e| format!("{flag}: {e}"));
            match flag.as_str() {
                "--switches" => args.switches = parse_usize(&value)?,
                "--bandwidth" => args.bandwidth = parse_usize(&value)?,
                "--in-channels" => args.in_channels = parse_usize(&value)?,
                "--size" => args.size = parse_usize(&value)?,
                "--filters" => args.filters = parse_usize(&value)?,
                "--kernel" => args.kernel = parse_usize(&value)?,
                "--stride" => args.stride = parse_usize(&value)?,
                "--pad" => args.pad = Some(parse_usize(&value)?),
                "--sparsity" => {
                    args.sparsity = value
                        .parse::<f64>()
                        .map_err(|e| format!("--sparsity: {e}"))?;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: mapcheck [--switches N] [--bandwidth N] [--in-channels C] \
                 [--size HW] [--filters K] [--kernel K] [--stride S] [--pad P] \
                 [--sparsity F]"
            );
            std::process::exit(if msg == "help" { 0 } else { 2 });
        }
    };
    let pad = args.pad.unwrap_or(args.kernel / 2);
    let layer = ConvLayer::new(
        "cli_conv",
        args.in_channels,
        args.size,
        args.size,
        args.filters,
        args.kernel,
        args.kernel,
        args.stride,
        pad,
    );
    let cfg = match MaeriConfig::builder(args.switches)
        .distribution_bandwidth(args.bandwidth)
        .collection_bandwidth(args.bandwidth)
        .build()
    {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("invalid fabric: {err}");
            std::process::exit(2);
        }
    };

    println!("layer:  {layer}");
    println!(
        "fabric: {} switches, {}x chubby trees\n",
        cfg.num_mult_switches(),
        cfg.dist_bandwidth()
    );

    let mapper = ConvMapper::new(cfg);
    let plan = mapper.plan(&layer, VnPolicy::Auto).expect("mappable");
    println!(
        "plan:   {} VNs x {} switches ({} channels/VN), {} fold passes, {} iterations",
        plan.num_vns,
        plan.vn_size,
        plan.channel_tile,
        plan.fold_factor(),
        plan.iterations
    );

    let run = if args.sparsity > 0.0 {
        let mask = WeightMask::generate(&layer, args.sparsity, &mut SimRng::seed(42));
        let sparse = SparseConvMapper::new(cfg);
        let ct = sparse.auto_channel_tile(&layer, &mask);
        println!(
            "sparse: {:.0}% zeros, auto channel tile {ct}",
            args.sparsity * 100.0
        );
        sparse.run(&layer, &mask, ct).expect("mappable")
    } else {
        mapper.run(&layer, VnPolicy::Auto).expect("mappable")
    };
    println!(
        "maeri:  {} cycles | {:.1}% utilization | {} SRAM reads | {} writes",
        run.cycles.as_u64(),
        run.utilization() * 100.0,
        run.sram_reads,
        run.sram_writes
    );

    // Baselines at the same compute count (square-ish array).
    let side = (args.switches as f64).sqrt() as usize;
    if side * side == args.switches {
        let sa = SystolicArray::new(side, side, args.bandwidth).run_conv(&layer);
        let rs = RowStationary::new(side, side, args.bandwidth).run_conv(&layer);
        println!(
            "systolic {side}x{side}: {} cycles | {:.1}% util  (MAERI speedup {:.2}x)",
            sa.cycles.as_u64(),
            sa.utilization() * 100.0,
            sa.cycles.as_f64() / run.cycles.as_f64()
        );
        println!(
            "row-stat {side}x{side}: {} cycles | {:.1}% util  (MAERI speedup {:.2}x)",
            rs.cycles.as_u64(),
            rs.utilization() * 100.0,
            rs.cycles.as_f64() / run.cycles.as_f64()
        );
    }
}
