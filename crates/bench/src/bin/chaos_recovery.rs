//! Chaos recovery: deterministic fault injection over the serving
//! stack's journal, store, deadlines, and breaker (thin wrapper over
//! `maeri_bench::reports::chaos_recovery`).

fn main() {
    maeri_bench::reports::chaos_recovery::run();
}
