//! Regenerates Figure 12: dense-CONV latency and utilization of the
//! systolic array, row-stationary design and MAERI at 64 compute units.
//! (thin wrapper over `maeri_bench::reports::figure12`).

fn main() {
    maeri_bench::reports::figure12::run();
}
