//! Ablation studies for the design choices DESIGN.md calls out:
//! the ART's forwarding links, the chubby bandwidth, the collection
//! (thin wrapper over `maeri_bench::reports::ablations`).

fn main() {
    maeri_bench::reports::ablations::run();
}
