//! Regenerates Figure 16: area and power of MAERI's trees vs mesh,
//! crossbar and bus NoCs over a bandwidth sweep.
//! (thin wrapper over `maeri_bench::reports::figure16`).

fn main() {
    maeri_bench::reports::figure16::run();
}
