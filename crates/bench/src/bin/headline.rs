//! Regenerates the abstract's headline claim: "8-459% better
//! utilization across multiple dataflow mappings over baselines with
//! (thin wrapper over `maeri_bench::reports::headline`).

fn main() {
    maeri_bench::reports::headline::run();
}
