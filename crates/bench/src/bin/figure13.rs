//! Regenerates Figure 13: VGG-16 conv8 latency under weight sparsity
//! for MAERI (1x and 0.25x bandwidth) vs the fixed-cluster baseline.
//! (thin wrapper over `maeri_bench::reports::figure13`).

fn main() {
    maeri_bench::reports::figure13::run();
}
