//! The paper's evaluation experiments, as reusable functions.
//!
//! Everything here is deterministic (seeded RNG) so binaries and tests
//! regenerate identical numbers.
//!
//! The dataflow sweeps (Figs. 12-14, 17) are expressed as
//! [`SimJob`] batches and submitted to the shared
//! [`Runtime`](maeri_runtime::Runtime), which parallelizes them across
//! workers and caches identical points: the headline summary re-visits
//! the figure sweeps and is answered from cache. Results come back in
//! job order, so the numbers are bit-identical to the old serial loops.

use maeri::analytic::AnalyticResult;
use maeri::engine::RunStats;
use maeri::{FaultSpec, MaeriConfig, VnPolicy};
use maeri_dnn::layer::Layer;
use maeri_dnn::{zoo, ConvLayer};
use maeri_mapspace::{SearchLayer, SearchResult, SearchSpec};
use maeri_noc::ppa::{compare_all, NocKind, NocPpa};
use maeri_noc::reduction::{utilization_sweep, ReductionKind};
use maeri_ppa::DesignPoint;
use maeri_runtime::{JobResult, Runtime, SimJob};

/// Seed used by every randomized experiment.
pub const EXPERIMENT_SEED: u64 = 42;

/// Unwraps the next batched result as mapper/baseline run statistics.
fn take_run(results: &mut impl Iterator<Item = JobResult>) -> RunStats {
    results
        .next()
        .expect("batch is sized to the sweep")
        .expect("experiment points are mappable")
        .into_run_stats()
}

/// Unwraps the next batched result as an analytic walk-through.
fn take_analytic(results: &mut impl Iterator<Item = JobResult>) -> AnalyticResult {
    results
        .next()
        .expect("batch is sized to the sweep")
        .expect("analytic walk-throughs cannot fail")
        .into_analytic()
}

/// The paper's 64-PE evaluation configuration.
#[must_use]
pub fn paper_config() -> MaeriConfig {
    MaeriConfig::paper_64()
}

// ---------------------------------------------------------------- fig 12

/// One Figure 12 layer result: the three designs at 64 compute units.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Layer name.
    pub layer: String,
    /// Cycles of an ideal 64-PE accelerator (MACs / 64).
    pub ideal_cycles: u64,
    /// MAERI result.
    pub maeri: RunStats,
    /// Systolic-array result.
    pub systolic: RunStats,
    /// Row-stationary result.
    pub row_stationary: RunStats,
}

/// Runs the Figure 12 sweep: AlexNet C1-C5 plus representative VGG-16
/// layers on MAERI, a systolic array, and a row-stationary design, all
/// with 64 multipliers and 8-word SRAM bandwidth.
#[must_use]
pub fn figure12() -> Vec<Fig12Row> {
    let cfg = paper_config();
    let layers = zoo::fig12_layers();
    let jobs: Vec<SimJob> = layers
        .iter()
        .flat_map(|layer| {
            [
                SimJob::dense_conv(cfg, layer.clone(), VnPolicy::Auto),
                SimJob::systolic_conv(8, 8, 8, layer.clone()),
                SimJob::row_stationary_conv(8, 8, 8, layer.clone()),
            ]
        })
        .collect();
    let mut results = Runtime::global().run_phase("figure12", &jobs).into_iter();
    layers
        .into_iter()
        .map(|layer| Fig12Row {
            ideal_cycles: layer.macs() / 64,
            maeri: take_run(&mut results),
            systolic: take_run(&mut results),
            row_stationary: take_run(&mut results),
            layer: layer.name.clone(),
        })
        .collect()
}

/// Mean MAERI speedup over the systolic array across the Figure 12
/// layers (the paper reports 72.4 % average speedup, ~95 % utilization
/// on 3x3-heavy layers).
#[must_use]
pub fn figure12_mean_speedup(rows: &[Fig12Row]) -> f64 {
    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.maeri.speedup_over(&r.systolic))
        .collect();
    maeri_sim::util::mean(&speedups).unwrap_or(0.0)
}

// ---------------------------------------------------------------- fig 13

/// One Figure 13 sparsity point.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Percentage of zero weights.
    pub sparsity_pct: u32,
    /// MAERI at 1x chubby bandwidth (8 words/cycle).
    pub maeri_1x: RunStats,
    /// MAERI at 0.25x chubby bandwidth (2 words/cycle).
    pub maeri_quarter: RunStats,
    /// Fixed 4x4-cluster baseline.
    pub cluster: RunStats,
}

/// Runs the Figure 13 sweep: VGG-16 conv8 with 0-50 % zero weights on
/// MAERI (1x and 0.25x root bandwidth) and the fixed-cluster baseline,
/// 27-weight neuron slices (3 channels x 3x3) as in the paper.
/// The fixed-cluster baseline shape: 4 clusters of 16 PEs on an 8-word
/// bus (kept in sync with `FixedClusterArray::paper_baseline`).
const CLUSTER_BASELINE: (usize, usize, usize) = (4, 16, 8);

/// Runs the Figure 13 sweep: VGG-16 conv8 with 0-50 % zero weights on
/// MAERI (1x and 0.25x root bandwidth) and the fixed-cluster baseline,
/// 27-weight neuron slices (3 channels x 3x3) as in the paper.
#[must_use]
pub fn figure13() -> Vec<Fig13Row> {
    let layer = zoo::vgg16_c8();
    let full = paper_config();
    let quarter = MaeriConfig::builder(64)
        .distribution_bandwidth(2)
        .collection_bandwidth(2)
        .build()
        .expect("valid 0.25x configuration");
    let (clusters, cluster_size, bus) = CLUSTER_BASELINE;
    let pcts = [0u32, 10, 20, 30, 40, 50];
    let jobs: Vec<SimJob> = pcts
        .iter()
        .flat_map(|&pct| {
            let zero_fraction = f64::from(pct) / 100.0;
            [
                SimJob::sparse_conv(full, layer.clone(), zero_fraction, 3, EXPERIMENT_SEED),
                SimJob::sparse_conv(quarter, layer.clone(), zero_fraction, 3, EXPERIMENT_SEED),
                SimJob::ClusterSparseConv {
                    clusters,
                    cluster_size,
                    bus_bandwidth: bus,
                    layer: layer.clone(),
                    zero_fraction,
                    channel_tile: 3,
                    mask_seed: EXPERIMENT_SEED,
                },
            ]
        })
        .collect();
    let mut results = Runtime::global().run_phase("figure13", &jobs).into_iter();
    pcts.into_iter()
        .map(|pct| Fig13Row {
            sparsity_pct: pct,
            maeri_1x: take_run(&mut results),
            maeri_quarter: take_run(&mut results),
            cluster: take_run(&mut results),
        })
        .collect()
}

// ---------------------------------------------------------------- fig 14

/// One fused mapping of Figure 14.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Map name (MapA..MapE).
    pub name: String,
    /// The fused AlexNet layer names.
    pub layers: Vec<String>,
    /// MAERI fused run.
    pub maeri: RunStats,
    /// Fixed-cluster fused run.
    pub cluster: RunStats,
}

impl Fig14Row {
    /// MAERI speedup over the cluster baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.maeri.speedup_over(&self.cluster)
    }
}

fn alexnet_conv(name: &str) -> ConvLayer {
    let model = zoo::alexnet();
    match model.layer(name) {
        Some(Layer::Conv(c)) => c.clone(),
        _ => unreachable!("alexnet layer {name} exists"),
    }
}

/// The five fused maps of Figure 14: AlexNet conv 1+2+3, 2+3+4, 3+4+5,
/// 1+2+3+4 and 2+3+4+5.
#[must_use]
pub fn figure14() -> Vec<Fig14Row> {
    let maps: [(&str, &[&str]); 5] = [
        ("MapA", &["alexnet_conv1", "alexnet_conv2", "alexnet_conv3"]),
        ("MapB", &["alexnet_conv2", "alexnet_conv3", "alexnet_conv4"]),
        ("MapC", &["alexnet_conv3", "alexnet_conv4", "alexnet_conv5"]),
        (
            "MapD",
            &[
                "alexnet_conv1",
                "alexnet_conv2",
                "alexnet_conv3",
                "alexnet_conv4",
            ],
        ),
        (
            "MapE",
            &[
                "alexnet_conv2",
                "alexnet_conv3",
                "alexnet_conv4",
                "alexnet_conv5",
            ],
        ),
    ];
    let cfg = paper_config();
    let (clusters, cluster_size, bus) = CLUSTER_BASELINE;
    let jobs: Vec<SimJob> = maps
        .iter()
        .flat_map(|(_, names)| {
            let chain: Vec<ConvLayer> = names.iter().map(|n| alexnet_conv(n)).collect();
            [
                SimJob::fused_chain(cfg, chain.clone()),
                SimJob::ClusterFusedChain {
                    clusters,
                    cluster_size,
                    bus_bandwidth: bus,
                    layers: chain,
                },
            ]
        })
        .collect();
    let mut results = Runtime::global().run_phase("figure14", &jobs).into_iter();
    maps.into_iter()
        .map(|(name, names)| Fig14Row {
            name: name.to_owned(),
            layers: names.iter().map(|s| (*s).to_owned()).collect(),
            maeri: take_run(&mut results),
            cluster: take_run(&mut results),
        })
        .collect()
}

// ---------------------------------------------------------------- fig 15

/// The three reduction networks compared in Figure 15 (64 PEs).
#[must_use]
pub fn figure15() -> Vec<(String, Vec<(usize, f64)>)> {
    let kinds = [
        ReductionKind::Art,
        ReductionKind::FatTree,
        ReductionKind::PlainTrees {
            width: 16,
            count: 4,
        },
    ];
    kinds
        .into_iter()
        .map(|kind| (kind.name(), utilization_sweep(kind, 64)))
        .collect()
}

// ---------------------------------------------------------------- fig 16

/// One NoC PPA point of Figure 16.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Aggregate bandwidth in words/cycle.
    pub bandwidth: usize,
    /// `(noc, ppa)` for the four designs.
    pub designs: Vec<(NocKind, NocPpa)>,
}

/// Area/power of the four NoCs at 64 terminals over a bandwidth sweep.
#[must_use]
pub fn figure16() -> Vec<Fig16Row> {
    [1usize, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|bandwidth| Fig16Row {
            bandwidth,
            designs: compare_all(64, bandwidth),
        })
        .collect()
}

// ---------------------------------------------------------------- fig 17

/// The Figure 17 / Section 6.3 walk-through results.
#[derive(Debug, Clone)]
pub struct Fig17Report {
    /// 8x8 weight-stationary systolic array (paper: 156 cycles, 1323
    /// reads).
    pub systolic: AnalyticResult,
    /// 64-MS MAERI under the bandwidth-consistent rule (140 cycles,
    /// 516 reads).
    pub maeri: AnalyticResult,
    /// The paper's literally stated decomposition (143 cycles).
    pub maeri_paper_stated: AnalyticResult,
    /// SRAM-read ratio (systolic / MAERI) for the 256x256 scale-up on
    /// VGG-16 (paper: 6.3x fewer reads for MAERI).
    pub vgg16_read_ratio_256: f64,
}

/// Runs the deep-dive comparison.
#[must_use]
pub fn figure17() -> Fig17Report {
    let layer = maeri::analytic::example_layer();
    let vgg = zoo::vgg16();
    let convs = vgg.conv_layers();
    let mut jobs = vec![
        SimJob::AnalyticSystolic {
            layer: layer.clone(),
            rows: 8,
            cols: 8,
        },
        SimJob::AnalyticMaeri {
            layer,
            num_ms: 64,
            dist_bw: 8,
        },
    ];
    for conv in &convs {
        jobs.push(SimJob::AnalyticSystolic {
            layer: (*conv).clone(),
            rows: 256,
            cols: 256,
        });
        jobs.push(SimJob::AnalyticMaeri {
            layer: (*conv).clone(),
            num_ms: 256 * 256,
            dist_bw: 256,
        });
    }
    let mut results = Runtime::global().run_phase("figure17", &jobs).into_iter();
    let systolic = take_analytic(&mut results);
    let maeri = take_analytic(&mut results);
    let mut sa_reads = 0u64;
    let mut maeri_reads = 0u64;
    for _ in &convs {
        sa_reads += take_analytic(&mut results).sram_reads;
        maeri_reads += take_analytic(&mut results).sram_reads;
    }
    Fig17Report {
        systolic,
        maeri,
        maeri_paper_stated: maeri::analytic::maeri_example_paper_stated(),
        vgg16_read_ratio_256: sa_reads as f64 / maeri_reads as f64,
    }
}

// ----------------------------------------------------------- tables / fig 11

/// The Table 3 design points.
#[must_use]
pub fn table3() -> Vec<DesignPoint> {
    DesignPoint::table3()
}

/// Figure 11(e): core (PE-array) area versus PE count, normalized to
/// the 16-PE systolic array. Returns `(pes, systolic, maeri, eyeriss)`.
#[must_use]
pub fn figure11_scaling() -> Vec<(usize, f64, f64, f64)> {
    use maeri_ppa::AcceleratorKind;
    let mk = |kind, n: usize, local: usize| DesignPoint {
        kind,
        num_pes: n,
        local_bytes: local,
        pb_kb: 80,
    };
    let base = mk(AcceleratorKind::SystolicArray, 16, 0).core_area_um2();
    [16usize, 32, 64, 128, 256]
        .into_iter()
        .map(|n| {
            (
                n,
                mk(AcceleratorKind::SystolicArray, n, 0).core_area_um2() / base,
                mk(AcceleratorKind::Maeri, n, 512).core_area_um2() / base,
                mk(AcceleratorKind::Eyeriss, n, 512).core_area_um2() / base,
            )
        })
        .collect()
}

// ------------------------------------------------------------- fault sweep

/// One dead-multiplier rate of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Injected dead-multiplier rate, in permille.
    pub rate_permille: u16,
    /// Mean surviving compute fraction across the sweep seeds.
    pub fabric_yield: f64,
    /// Points (layer x seed) that still produced a mapping.
    pub mapped: usize,
    /// Total points at this rate.
    pub points: usize,
    /// Mean cycles across the mapped points.
    pub mean_cycles: f64,
    /// Mean per-point cycle ratio against the fault-free fabric,
    /// over the mapped points.
    pub slowdown: f64,
}

/// Dead-multiplier rates swept, in permille (0-25 % of the array).
pub const FAULT_SWEEP_RATES: [u16; 6] = [0, 50, 100, 150, 200, 250];

/// Seeds averaged per fault rate.
const FAULT_SWEEP_SEEDS: [u64; 3] = [EXPERIMENT_SEED, EXPERIMENT_SEED + 1, EXPERIMENT_SEED + 2];

fn fault_sweep_config(rate_permille: u16, seed: u64) -> MaeriConfig {
    if rate_permille == 0 {
        // The fault-free point is the plain paper fabric, so it shares
        // cached results with every other report.
        return paper_config();
    }
    MaeriConfig::builder(64)
        .faults(FaultSpec::new(seed).dead_multipliers(rate_permille))
        .build()
        .expect("sub-100% fault rates validate")
}

/// Runs the fault sweep: AlexNet's convolution layers on a 64-switch
/// fabric with 0-25 % of the multiplier switches stuck dead, averaged
/// over three fault placements per rate. Reports the surviving compute
/// yield, how many points still map (the fault-aware mappers carve VNs
/// around the dead spans), and the cycle cost of the lost parallelism.
#[must_use]
pub fn fault_sweep() -> Vec<FaultSweepRow> {
    let model = zoo::alexnet();
    let layers: Vec<ConvLayer> = model.conv_layers().into_iter().cloned().collect();
    let mut jobs = Vec::new();
    for &rate in &FAULT_SWEEP_RATES {
        for &seed in &FAULT_SWEEP_SEEDS {
            let cfg = fault_sweep_config(rate, seed);
            for layer in &layers {
                jobs.push(SimJob::dense_conv(cfg, layer.clone(), VnPolicy::Auto));
            }
        }
    }
    let results: Vec<JobResult> = Runtime::global().run_phase("fault_sweep", &jobs);

    // The first rate is 0: its first seed's block is the clean baseline.
    let clean_cycles: Vec<f64> = results[..layers.len()]
        .iter()
        .map(|r| {
            r.as_ref()
                .expect("the fault-free fabric maps every layer")
                .run_stats()
                .expect("dense conv returns run statistics")
                .cycles
                .as_f64()
        })
        .collect();

    let block = FAULT_SWEEP_SEEDS.len() * layers.len();
    FAULT_SWEEP_RATES
        .iter()
        .enumerate()
        .map(|(rate_idx, &rate)| {
            let mut mapped = 0usize;
            let mut cycle_sum = 0.0;
            let mut ratio_sum = 0.0;
            let mut yield_sum = 0.0;
            for (seed_idx, &seed) in FAULT_SWEEP_SEEDS.iter().enumerate() {
                let cfg = fault_sweep_config(rate, seed);
                yield_sum += cfg.fault_plan().map_or(1.0, |plan| plan.yield_fraction());
                for (layer_idx, _) in layers.iter().enumerate() {
                    let at = rate_idx * block + seed_idx * layers.len() + layer_idx;
                    if let Ok(output) = &results[at] {
                        let cycles = output
                            .run_stats()
                            .expect("dense conv returns run statistics")
                            .cycles
                            .as_f64();
                        mapped += 1;
                        cycle_sum += cycles;
                        ratio_sum += cycles / clean_cycles[layer_idx];
                    }
                }
            }
            FaultSweepRow {
                rate_permille: rate,
                fabric_yield: yield_sum / FAULT_SWEEP_SEEDS.len() as f64,
                mapped,
                points: block,
                mean_cycles: if mapped > 0 {
                    cycle_sum / mapped as f64
                } else {
                    0.0
                },
                slowdown: if mapped > 0 {
                    ratio_sum / mapped as f64
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

// --------------------------------------------------------- telemetry profile

/// One telemetry-instrumented CONV layer of the profile.
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Layer name.
    pub layer: String,
    /// Cycles of the instrumented clocked trace.
    pub cycles: u64,
    /// Multiplier busy fraction over the run.
    pub mult_busy: f64,
    /// Fraction of lane-cycles stalled waiting on distribution.
    pub dist_stall: f64,
    /// Fraction of lane-cycles stalled on collection backpressure.
    pub collect_stall: f64,
    /// Utilization of the busiest distribution-tree level.
    pub peak_link_utilization: f64,
    /// Median VN reduction latency, in cycles.
    pub vn_latency_p50: u64,
    /// 95th-percentile VN reduction latency, in cycles.
    pub vn_latency_p95: u64,
    /// Adder switches active in the configured ART.
    pub art_active_adders: u64,
    /// Trace events the probes recorded for the layer.
    pub events: u64,
}

/// Runs the telemetry profile: AlexNet's convolution layers through the
/// clocked simulator with the fabric probes live, reducing the event
/// stream of each layer to link utilization, busy/stall fractions, and
/// the VN-latency histogram. Deterministic: the probes observe the same
/// scheduled cycles every run.
#[must_use]
pub fn telemetry_profile() -> Vec<TelemetryRow> {
    let model = zoo::alexnet();
    let layers: Vec<ConvLayer> = model.conv_layers().into_iter().cloned().collect();
    let jobs: Vec<SimJob> = layers
        .iter()
        .map(|layer| SimJob::telemetry_conv(paper_config(), layer.clone(), VnPolicy::Auto))
        .collect();
    let results = Runtime::global().run_phase("telemetry_profile", &jobs);
    layers
        .iter()
        .zip(results)
        .map(|(layer, result)| {
            let output = result.expect("the paper fabric maps every AlexNet layer");
            let run = output
                .telemetry()
                .expect("telemetry jobs return telemetry output")
                .clone();
            let mut latency = run.fabric.vn_latency.clone();
            TelemetryRow {
                layer: layer.name.clone(),
                cycles: run.fabric.cycles,
                mult_busy: run.fabric.mult_busy_fraction,
                dist_stall: run.fabric.dist_stall_fraction,
                collect_stall: run.fabric.collect_stall_fraction,
                peak_link_utilization: run
                    .fabric
                    .dist_level_utilization
                    .iter()
                    .copied()
                    .fold(0.0, f64::max),
                vn_latency_p50: latency.percentile(50.0).unwrap_or(0),
                vn_latency_p95: latency.percentile(95.0).unwrap_or(0),
                art_active_adders: run.fabric.art_active_adders,
                events: run.fabric.total_events(),
            }
        })
        .collect()
}

// ----------------------------------------------------------- mapping search

/// The layer searches of the `mapping_search` report: every Figure 12
/// CONV layer, AlexNet's two big FC layers, a DeepSpeech2 recurrent
/// layer, and the sparse VGG16-C8 layer — all tuned exhaustively on the
/// paper's 64-switch fabric.
#[must_use]
pub fn mapping_search_specs() -> Vec<SearchSpec> {
    let cfg = paper_config();
    let mut specs: Vec<SearchSpec> = zoo::fig12_layers()
        .into_iter()
        .map(|layer| SearchSpec::new(SearchLayer::Conv(layer), cfg))
        .collect();
    let alexnet = zoo::alexnet();
    for name in ["alexnet_fc6", "alexnet_fc7"] {
        if let Some(Layer::Fc(l)) = alexnet.layer(name) {
            specs.push(SearchSpec::new(SearchLayer::Fc(l.clone()), cfg));
        }
    }
    if let Some(Layer::Lstm(l)) = zoo::deepspeech2().layer("ds2_rnn2") {
        specs.push(SearchSpec::new(SearchLayer::Lstm(l.clone()), cfg));
    }
    specs.push(SearchSpec::new(
        SearchLayer::SparseConv {
            layer: zoo::vgg16_c8(),
            zero_fraction: 0.6,
            mask_seed: EXPERIMENT_SEED,
        },
        cfg,
    ));
    specs
}

/// Runs the mapping-space auto-tuner over [`mapping_search_specs`] as
/// one runtime batch (parallel across workers, cached by content hash)
/// and returns the per-layer results in spec order.
#[must_use]
pub fn mapping_search() -> Vec<SearchResult> {
    let jobs: Vec<SimJob> = mapping_search_specs()
        .into_iter()
        .map(SimJob::map_search)
        .collect();
    Runtime::global()
        .run_phase("mapping_search", &jobs)
        .into_iter()
        .map(|result| {
            result
                .expect("every zoo search spec is well-formed")
                .into_search()
        })
        .collect()
}

// ----------------------------------------------------------------- headline

/// Utilization-improvement observations across all dataflow
/// experiments: `(experiment, maeri utilization, baseline utilization,
/// improvement %)`. The paper's abstract quotes 8-459 % across its
/// mappings.
#[must_use]
pub fn headline_improvements() -> Vec<(String, f64, f64, f64)> {
    let mut out = Vec::new();
    let mut push = |label: String, maeri: f64, baseline: f64| {
        if baseline > 0.0 {
            out.push((label, maeri, baseline, (maeri / baseline - 1.0) * 100.0));
        }
    };
    for row in figure12() {
        push(
            format!("{} vs systolic", row.layer),
            row.maeri.utilization(),
            row.systolic.utilization(),
        );
        push(
            format!("{} vs row-stationary", row.layer),
            row.maeri.utilization(),
            row.row_stationary.utilization(),
        );
    }
    for row in figure13() {
        push(
            format!("vgg16_c8 @{}% sparse vs clusters", row.sparsity_pct),
            row.maeri_1x.utilization(),
            row.cluster.utilization(),
        );
    }
    for row in figure14() {
        push(
            format!("{} fused vs clusters", row.name),
            row.maeri.utilization(),
            row.cluster.utilization(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_baselines::FixedClusterArray;

    #[test]
    fn cluster_baseline_matches_paper_shape() {
        let (clusters, cluster_size, bus) = CLUSTER_BASELINE;
        assert_eq!(
            FixedClusterArray::new(clusters, cluster_size, bus),
            FixedClusterArray::paper_baseline()
        );
    }

    #[test]
    fn figure12_has_ten_layers_and_maeri_wins_on_3x3() {
        let rows = figure12();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            // Same work on every design.
            assert_eq!(row.maeri.macs, row.systolic.macs);
            assert_eq!(row.maeri.macs, row.row_stationary.macs);
            if row.layer.contains("vgg") {
                assert!(row.maeri.cycles < row.systolic.cycles, "{}", row.layer);
                assert!(
                    row.maeri.cycles < row.row_stationary.cycles,
                    "{}",
                    row.layer
                );
                assert!(row.maeri.utilization() > 0.9, "{}", row.layer);
            }
        }
    }

    #[test]
    fn figure12_average_speedup_in_paper_band() {
        // Paper: 72.4% average speedup. Accept a generous band around
        // it — the shape claim is "MAERI is decisively faster overall".
        let rows = figure12();
        let mean = figure12_mean_speedup(&rows);
        assert!(
            (1.4..=2.3).contains(&mean),
            "mean speedup {mean} outside band"
        );
    }

    #[test]
    fn figure13_speedup_grows_with_sparsity() {
        let rows = figure13();
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let s0 = first.cluster.cycles.as_f64() / first.maeri_1x.cycles.as_f64();
        let s50 = last.cluster.cycles.as_f64() / last.maeri_1x.cycles.as_f64();
        assert!(s50 > s0 + 0.5, "speedup must grow: {s0} -> {s50}");
        assert!(s50 >= 3.0, "50% sparse speedup {s50}");
        // Paper: 73.8% utilization at 50% sparsity.
        let util = last.maeri_1x.utilization();
        assert!((util - 0.738).abs() < 0.08, "util {util}");
        // 0.25x bandwidth throttles MAERI heavily.
        assert!(last.maeri_quarter.cycles.as_u64() > 2 * last.maeri_1x.cycles.as_u64());
    }

    #[test]
    fn figure14_speedups_in_paper_band() {
        // Paper: 1.08-1.5x with MapC the largest win. Our consistent
        // multicast-sharing model lands ~1.5x higher in magnitude but
        // preserves the ordering (MapC max, MapA min).
        let rows = figure14();
        for row in &rows {
            let s = row.speedup();
            assert!(
                (1.0..=2.6).contains(&s),
                "{} speedup {s} outside band",
                row.name
            );
        }
        let max_row = rows
            .iter()
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .unwrap();
        assert_eq!(max_row.name, "MapC", "paper's best map is MapC");
        assert!(max_row.speedup() >= 1.5);
    }

    #[test]
    fn figure15_art_dominates() {
        let curves = figure15();
        assert_eq!(curves.len(), 3);
        let art = &curves[0].1;
        for (name, curve) in &curves[1..] {
            for ((vn, art_util), (_, other_util)) in art.iter().zip(curve) {
                assert!(
                    art_util + 1e-12 >= *other_util,
                    "{name} beats ART at vn={vn}"
                );
            }
        }
    }

    #[test]
    fn figure16_maeri_cheapest_vs_switched_nocs() {
        for row in figure16() {
            let maeri = row
                .designs
                .iter()
                .find(|(k, _)| *k == NocKind::MaeriTrees)
                .unwrap()
                .1;
            for (kind, ppa) in &row.designs {
                if matches!(kind, NocKind::Mesh | NocKind::Crossbar) {
                    assert!(maeri.area_um2 < ppa.area_um2);
                }
            }
        }
    }

    #[test]
    fn figure17_matches_paper_numbers() {
        let report = figure17();
        assert_eq!(report.systolic.cycles, 156);
        assert_eq!(report.systolic.sram_reads, 1323);
        assert_eq!(report.maeri_paper_stated.cycles, 143);
        assert_eq!(report.maeri.sram_reads, 516);
        assert!(report.maeri.cycles < report.systolic.cycles);
        // Scale-up: MAERI reads several times fewer on VGG-16.
        assert!(
            report.vgg16_read_ratio_256 > 1.5,
            "read ratio {}",
            report.vgg16_read_ratio_256
        );
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let rows = fault_sweep();
        assert_eq!(rows.len(), FAULT_SWEEP_RATES.len());
        let clean = &rows[0];
        assert!((clean.fabric_yield - 1.0).abs() < 1e-12);
        assert!((clean.slowdown - 1.0).abs() < 1e-12);
        assert_eq!(clean.mapped, clean.points);
        for pair in rows.windows(2) {
            assert!(
                pair[1].fabric_yield <= pair[0].fabric_yield + 1e-12,
                "yield must fall as faults rise"
            );
        }
        for row in &rows {
            assert!(
                row.slowdown >= 1.0 - 1e-9,
                "faults never speed things up: {} at {}",
                row.slowdown,
                row.rate_permille
            );
            assert!(
                row.mapped == row.points,
                "auto VN sizing must carve around <=25% dead switches"
            );
        }
        let last = rows.last().unwrap();
        assert!(last.slowdown > 1.0, "25% dead switches must cost cycles");
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let a = fault_sweep();
        let b = fault_sweep();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rate_permille, y.rate_permille);
            assert_eq!(x.mapped, y.mapped);
            assert!((x.mean_cycles - y.mean_cycles).abs() < 1e-12);
            assert!((x.slowdown - y.slowdown).abs() < 1e-12);
        }
    }

    #[test]
    fn telemetry_profile_observes_every_conv_layer() {
        let rows = telemetry_profile();
        assert_eq!(rows.len(), zoo::alexnet().conv_layers().len());
        for row in &rows {
            assert!(row.cycles > 0, "{}: empty trace", row.layer);
            assert!(row.events > 0, "{}: probes recorded nothing", row.layer);
            assert!(
                (0.0..=1.0).contains(&row.mult_busy),
                "{}: busy fraction {}",
                row.layer,
                row.mult_busy
            );
            assert!((0.0..=1.0).contains(&row.peak_link_utilization));
            assert!(row.vn_latency_p95 >= row.vn_latency_p50);
            assert!(row.art_active_adders > 0, "{}: ART unconfigured", row.layer);
        }
    }

    #[test]
    fn telemetry_profile_is_deterministic() {
        let a = telemetry_profile();
        let b = telemetry_profile();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.layer, y.layer);
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.events, y.events);
            assert_eq!(x.vn_latency_p50, y.vn_latency_p50);
            assert_eq!(x.vn_latency_p95, y.vn_latency_p95);
            assert!((x.mult_busy - y.mult_busy).abs() < 1e-15);
        }
    }

    #[test]
    fn headline_has_large_positive_improvements() {
        let improvements = headline_improvements();
        assert!(improvements.len() > 20);
        let max = improvements
            .iter()
            .map(|(_, _, _, pct)| *pct)
            .fold(f64::MIN, f64::max);
        assert!(max > 100.0, "max improvement {max}%");
    }
}
