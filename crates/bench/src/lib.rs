//! Benchmark harness: one module per table/figure of the paper's
//! evaluation, plus report formatting.
//!
//! Each experiment lives in [`experiments`] as a plain function that
//! returns structured results; the `src/bin/*` binaries print them as
//! text tables next to the paper's reported values, and the workspace
//! integration tests assert the headline bands (who wins, by roughly
//! what factor) hold.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — DNN parameter survey |
//! | `table3` | Table 3 — design points |
//! | `figure11` | Fig. 11 — area/power breakdowns and scaling |
//! | `figure12` | Fig. 12 — dense CONV latency & utilization |
//! | `figure13` | Fig. 13 — sparse VGG16-C8 latency vs sparsity |
//! | `figure14` | Fig. 14 — cross-layer fusion speedups |
//! | `figure15` | Fig. 15 — ART vs fat tree vs plain trees |
//! | `figure16` | Fig. 16 — NoC area/power vs bandwidth |
//! | `figure17` | Fig. 17 — systolic vs MAERI walk-through |
//! | `headline` | abstract's 8-459 % utilization-improvement range |
//! | `mapping_search` | auto-tuned vs heuristic mappings across the zoo |
//! | `fleet_schedule` | heterogeneous fleet scheduling over Fig. 12's backends |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod reports;
