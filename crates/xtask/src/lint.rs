//! The repository invariant checks behind `cargo run -p xtask -- lint`.
//!
//! Every check is a pure function over `(path, content)` pairs so the
//! unit tests below can prove each one fails on a seeded violation
//! without touching the real tree. The binary (`main.rs`) walks the
//! workspace and feeds real files through the same functions.
//!
//! Checks:
//!
//! 1. **Probe-twin sync** — every `pub fn NAME_probed` in `crates/maeri`
//!    and `crates/noc` must have a plain `fn NAME` in the same file,
//!    and one of the pair must delegate to the other (so the probed and
//!    unprobed entry points cannot drift apart).
//! 2. **Unwrap allowlist** — `.unwrap()` / `.expect(` outside
//!    `#[cfg(test)]` code is only allowed in allowlisted files, and
//!    allowlist entries that no longer match anything are stale.
//! 3. **Report registry** — `crates/bench/src/reports/mod.rs` ids must
//!    be unique, contiguous, and start at 1 (EXPERIMENTS.md quotes
//!    them).
//! 4. **Unsafe-code headers** — every crate entry point carries
//!    `#![forbid(unsafe_code)]`.
//! 5. **Doc path references** — backtick-quoted repo paths in the
//!    top-level docs (README, ROADMAP, DESIGN, EXPERIMENTS) must exist
//!    in the tree, so refactors cannot leave the docs pointing at
//!    nothing.
//! 6. **Chaos fault coverage** — every `FaultPoint` variant in
//!    `crates/serve/src/chaos.rs` must be listed in `FaultPoint::ALL`,
//!    carry a stable snake_case `name()` string, and be exercised by a
//!    serve test or the `chaos_recovery` report (directly or via an
//!    iteration over `FaultPoint::ALL`), so a new fault cannot ship
//!    without the harness injecting it.
//! 7. **Span-kind catalog coverage** — every `SpanKind` variant in
//!    `crates/telemetry/src/span.rs` must be listed in
//!    `SpanKind::ALL`, carry a stable snake_case `name()` string, be
//!    emitted somewhere in the serving stack (`crates/serve/src`,
//!    `crates/runtime/src`), and be exercised by a serve test or the
//!    `service_trace` report — so the trace vocabulary, its emitters,
//!    and its tests cannot drift apart.
//! 8. **Placement-policy catalog coverage** — every `PlacementPolicy`
//!    variant in `crates/fleet/src/placement.rs` must be listed in
//!    `PlacementPolicy::ALL`, carry a stable snake_case `name()`
//!    string, be exercised by a fleet test or the `fleet_schedule`
//!    report (directly or via a `PlacementPolicy::ALL` sweep), and be
//!    documented in DESIGN.md — a new scheduling policy cannot ship
//!    untested or undocumented.

/// One violated invariant: the offending path plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl Finding {
    fn new(path: &str, message: impl Into<String>) -> Self {
        Finding {
            path: path.to_owned(),
            message: message.into(),
        }
    }
}

/// Files allowed to call `.unwrap()` / `.expect(` outside test code.
/// Every entry documents a deliberate panic-on-violated-invariant
/// policy (poisoned mutexes, validated-at-build-time constants, report
/// printers that own their inputs). Adding a file here is a reviewed
/// decision; entries that stop matching are flagged as stale.
pub const UNWRAP_ALLOWLIST: &[&str] = &[
    "crates/baselines/src/cluster.rs",
    "crates/bench/src/bin/mapcheck.rs",
    "crates/bench/src/experiments.rs",
    "crates/bench/src/reports/ablations.rs",
    "crates/bench/src/reports/chaos_recovery.rs",
    "crates/bench/src/reports/energy.rs",
    "crates/bench/src/reports/fault_sweep.rs",
    "crates/bench/src/reports/figure13.rs",
    "crates/bench/src/reports/figure16.rs",
    "crates/bench/src/reports/mapping_search.rs",
    "crates/bench/src/reports/service_load.rs",
    "crates/bench/src/reports/service_trace.rs",
    "crates/bench/src/reports/telemetry_profile.rs",
    "crates/dnn/src/tensor.rs",
    "crates/maeri/src/art.rs",
    "crates/maeri/src/config.rs",
    "crates/maeri/src/functional.rs",
    "crates/maeri/src/viz.rs",
    "crates/mapspace/src/search.rs",
    "crates/noc/src/ppa.rs",
    "crates/runtime/src/cache.rs",
    "crates/runtime/src/metrics.rs",
    "crates/runtime/src/pool.rs",
    "crates/runtime/src/runtime.rs",
    "crates/runtime/src/supervise.rs",
    "crates/serve/src/chaos.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/recorder.rs",
    "crates/serve/src/registry.rs",
    "crates/serve/src/service.rs",
    "crates/serve/src/store.rs",
    "crates/telemetry/src/json.rs",
];

/// The portion of a source file that ships in the library/binary: the
/// text above the first `#[cfg(test)]` marker (this workspace keeps
/// test modules at the end of each file).
fn non_test(content: &str) -> &str {
    match content.find("#[cfg(test)]") {
        Some(idx) => &content[..idx],
        None => content,
    }
}

/// Whether the trimmed line is a comment (line or doc comment).
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//")
}

/// Check 2: `.unwrap()` / `.expect(` outside tests and outside the
/// allowlist. `files` are `(repo-relative path, content)` pairs for the
/// whole scan scope; the allowlist is cross-checked for staleness.
pub fn check_unwraps(files: &[(String, String)], allowlist: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut matched: Vec<&str> = Vec::new();
    for (path, content) in files {
        let mut hits = 0usize;
        let mut first_line = 0usize;
        for (i, line) in non_test(content).lines().enumerate() {
            if is_comment(line) {
                continue;
            }
            if line.contains(".unwrap()") || line.contains(".expect(") {
                hits += 1;
                if first_line == 0 {
                    first_line = i + 1;
                }
            }
        }
        if hits == 0 {
            continue;
        }
        if let Some(entry) = allowlist.iter().find(|e| **e == path.as_str()) {
            matched.push(entry);
        } else {
            findings.push(Finding::new(
                path,
                format!(
                    "{hits} non-test unwrap()/expect() call(s) (first at line {first_line}); \
                     return a Result or add the file to UNWRAP_ALLOWLIST"
                ),
            ));
        }
    }
    for entry in allowlist {
        if !matched.contains(entry) {
            findings.push(Finding::new(
                entry,
                "stale UNWRAP_ALLOWLIST entry: no non-test unwrap()/expect() left (remove it)",
            ));
        }
    }
    findings
}

/// Extracts the body of the function whose signature starts at
/// `sig_start` (the index of its `fn` keyword): the text between the
/// first `{` after the signature and its matching `}`.
fn fn_body(content: &str, sig_start: usize) -> Option<&str> {
    let rest = &content[sig_start..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds the `fn NAME` definition (not `NAME_probed`, not a prefix of a
/// longer name) and returns the index of its `fn` keyword.
fn find_fn(content: &str, name: &str) -> Option<usize> {
    let needle = format!("fn {name}");
    let mut from = 0;
    while let Some(rel) = content[from..].find(&needle) {
        let at = from + rel;
        let after = content[at + needle.len()..].chars().next();
        if matches!(after, Some('(' | '<')) {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Base names of the `*_probed` functions a body calls (`foo_probed(`
/// yields `foo`).
fn probed_calls(body: &str) -> Vec<&str> {
    let mut names = Vec::new();
    let mut from = 0;
    while let Some(rel) = body[from..].find("_probed(") {
        let at = from + rel;
        let head = &body[..at];
        let start = head
            .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
            .map_or(0, |i| i + 1);
        if start < at {
            names.push(&body[start..at]);
        }
        from = at + "_probed(".len();
    }
    names
}

/// Check 1: probed entry points stay in sync with their plain twins.
pub fn check_probe_twins(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code = non_test(content);
    let mut from = 0;
    while let Some(rel) = code[from..].find("pub fn ") {
        let at = from + rel;
        let name_start = at + "pub fn ".len();
        let name: String = code[name_start..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        from = name_start + name.len().max(1);
        let Some(base) = name.strip_suffix("_probed") else {
            continue;
        };
        let Some(plain_at) = find_fn(code, base) else {
            findings.push(Finding::new(
                path,
                format!("probed entry point `{name}` has no plain twin `fn {base}`"),
            ));
            continue;
        };
        let probed_body = find_fn(code, &name).and_then(|i| fn_body(code, i));
        let plain_body = fn_body(code, plain_at);
        // Direct delegation: one twin calls the other.
        let mut delegates = probed_body.is_some_and(|b| b.contains(&format!("{base}(")))
            || plain_body.is_some_and(|b| b.contains(name.as_str()));
        // Parallel delegation: both twins forward to the same inner
        // pair (`multicast_cycles` → `delivery_cycles`,
        // `multicast_cycles_probed` → `delivery_cycles_probed`), so
        // drift is prevented one level down.
        if !delegates {
            if let (Some(pb), Some(nb)) = (probed_body, plain_body) {
                delegates = probed_calls(pb)
                    .iter()
                    .any(|inner| nb.contains(&format!("{inner}(")));
            }
        }
        if !delegates {
            findings.push(Finding::new(
                path,
                format!(
                    "`{name}` and `fn {base}` do not delegate to each other; \
                     reimplementing one risks probe drift"
                ),
            ));
        }
    }
    findings
}

/// Check 3: the report registry's ids are unique, contiguous, and
/// start at 1; names are unique.
pub fn check_report_registry(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut entries: Vec<(usize, String)> = Vec::new();
    let mut in_registry = false;
    for line in content.lines() {
        if line.contains("pub const REPORTS") {
            in_registry = true;
            continue;
        }
        if !in_registry {
            continue;
        }
        if line.trim_start().starts_with("];") {
            break;
        }
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix('(') else {
            continue;
        };
        let Some((id_text, tail)) = rest.split_once(',') else {
            continue;
        };
        let Ok(id) = id_text.trim().parse::<usize>() else {
            continue;
        };
        let name = tail.split('"').nth(1).unwrap_or("").to_owned();
        entries.push((id, name));
    }
    if entries.is_empty() {
        findings.push(Finding::new(path, "no REPORTS registry entries found"));
        return findings;
    }
    for (i, (id, _)) in entries.iter().enumerate() {
        if *id != i + 1 {
            findings.push(Finding::new(
                path,
                format!(
                    "report ids must be contiguous from 1: position {} holds id {id}",
                    i + 1
                ),
            ));
        }
    }
    let mut names: Vec<&str> = entries.iter().map(|(_, n)| n.as_str()).collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        if pair[0] == pair[1] {
            findings.push(Finding::new(
                path,
                format!("duplicate report name \"{}\"", pair[0]),
            ));
        }
    }
    findings
}

/// Check 4: crate entry points must forbid unsafe code at the source
/// level (the workspace lint table covers crates that opt in; the
/// header makes the guarantee visible and file-local).
pub fn check_forbid_unsafe(path: &str, content: &str) -> Vec<Finding> {
    if content.contains("#![forbid(unsafe_code)]") {
        Vec::new()
    } else {
        vec![Finding::new(
            path,
            "crate entry point is missing `#![forbid(unsafe_code)]`",
        )]
    }
}

/// Extracts the repo-path candidates referenced in backticks in a
/// markdown document: the first whitespace-separated word of each
/// backtick span, when it starts with a tracked prefix (`crates/`,
/// `examples/`, `compat/`, `src/`, `tests/`, `.github/`) or is an
/// absolute `/root/...` path. Globs are skipped; a trailing `/` or
/// punctuation is trimmed.
fn doc_path_candidates(content: &str) -> Vec<String> {
    const PREFIXES: &[&str] = &[
        "crates/",
        "examples/",
        "compat/",
        "src/",
        "tests/",
        ".github/",
        "/root/",
    ];
    let mut out = Vec::new();
    for span in content.split('`').skip(1).step_by(2) {
        let Some(word) = span.split_whitespace().next() else {
            continue;
        };
        let token = word.trim_end_matches(['/', '.', ',', ':', ';', ')']);
        if token.contains('*') || token.is_empty() {
            continue;
        }
        if PREFIXES.iter().any(|p| token.starts_with(p)) {
            out.push(token.to_owned());
        }
    }
    out
}

/// Check 5: backtick-quoted paths in top-level docs must exist in the
/// tree. `exists` answers for both repo-relative and absolute
/// candidates, so the check stays a pure function for tests.
pub fn check_doc_paths(doc: &str, content: &str, exists: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut flagged: Vec<String> = Vec::new();
    for candidate in doc_path_candidates(content) {
        if !exists(&candidate) && !flagged.contains(&candidate) {
            findings.push(Finding::new(
                doc,
                format!(
                    "references `{candidate}`, which does not exist in the tree \
                     (fix the reference or the path)"
                ),
            ));
            flagged.push(candidate);
        }
    }
    findings
}

/// Lowercases a CamelCase identifier into the snake_case form used by
/// `FaultPoint::name` (`KillMidDispatch` → `kill_mid_dispatch`).
fn snake_case(ident: &str) -> String {
    let mut out = String::new();
    for (i, c) in ident.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The variant identifiers of the plain (fieldless) enum declared as
/// `decl` in `content`: lines inside the enum block that are bare
/// identifiers ending in a comma (doc comments and attributes are
/// skipped).
fn plain_enum_variants(content: &str, decl: &str) -> Vec<String> {
    let Some(start) = content.find(decl) else {
        return Vec::new();
    };
    let Some(open) = content[start..].find('{') else {
        return Vec::new();
    };
    let body_start = start + open + 1;
    let Some(close) = content[body_start..].find('}') else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    for line in content[body_start..body_start + close].lines() {
        let t = line.trim();
        let Some(name) = t.strip_suffix(',') else {
            continue;
        };
        if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            variants.push(name.to_owned());
        }
    }
    variants
}

/// The variant identifiers of `pub enum FaultPoint` in `content`.
fn fault_point_variants(content: &str) -> Vec<String> {
    plain_enum_variants(content, "pub enum FaultPoint")
}

/// The text of the `ALL` const array inside the chaos module (between
/// `const ALL` and its closing `]`), so membership can be tested
/// without matching unrelated mentions of a variant.
fn fault_point_all_body(content: &str) -> &str {
    let Some(start) = content.find("const ALL") else {
        return "";
    };
    // Skip past the `=` so the `[FaultPoint; N]` type annotation is
    // not mistaken for the initializer array.
    let Some(eq) = content[start..].find('=') else {
        return "";
    };
    let Some(open) = content[start + eq..].find('[') else {
        return "";
    };
    let body_start = start + eq + open + 1;
    match content[body_start..].find(']') {
        Some(close) => &content[body_start..body_start + close],
        None => "",
    }
}

/// Check 6: every `FaultPoint` variant is registered in
/// `FaultPoint::ALL`, carries its stable snake_case `name()` string,
/// and is exercised by at least one coverage file (serve tests, the
/// chaos module's own test block, the `chaos_recovery` report) —
/// either by naming the variant / its snake_case string, or by
/// iterating `FaultPoint::ALL`.
pub fn check_fault_points(
    path: &str,
    chaos_content: &str,
    coverage: &[(String, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let variants = fault_point_variants(chaos_content);
    if variants.is_empty() {
        findings.push(Finding::new(
            path,
            "no `pub enum FaultPoint` variants found (the chaos harness lint needs them)",
        ));
        return findings;
    }
    let all_body = fault_point_all_body(chaos_content);
    for variant in &variants {
        let qualified = format!("FaultPoint::{variant}");
        let snake = snake_case(variant);
        let in_all = all_body.contains(&qualified);
        if !in_all {
            findings.push(Finding::new(
                path,
                format!("fault point `{variant}` is missing from `FaultPoint::ALL`"),
            ));
        }
        if !chaos_content.contains(&format!("\"{snake}\"")) {
            findings.push(Finding::new(
                path,
                format!("fault point `{variant}` has no stable `name()` string \"{snake}\""),
            ));
        }
        let exercised = coverage.iter().any(|(_, c)| {
            c.contains(&qualified)
                || c.contains(&snake)
                || (in_all && c.contains("FaultPoint::ALL"))
        });
        if !exercised {
            findings.push(Finding::new(
                path,
                format!(
                    "fault point `{variant}` is not exercised by any serve test or the \
                     chaos_recovery report (inject it, or fold it into a `FaultPoint::ALL` sweep)"
                ),
            ));
        }
    }
    findings
}

/// Check 7: the trace-span vocabulary stays honest. Every `SpanKind`
/// variant in the telemetry catalog must be registered in
/// `SpanKind::ALL`, carry its stable snake_case `name()` string, be
/// emitted by the serving stack (`emitters`: serve and runtime
/// sources), and be exercised by a coverage file (serve tests, the
/// `service_trace` report) — by qualified name, by its snake_case
/// string, or via an iteration over `SpanKind::ALL`.
pub fn check_span_kinds(
    path: &str,
    span_content: &str,
    emitters: &[(String, String)],
    coverage: &[(String, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let variants = plain_enum_variants(span_content, "pub enum SpanKind");
    if variants.is_empty() {
        findings.push(Finding::new(
            path,
            "no `pub enum SpanKind` variants found (the span catalog lint needs them)",
        ));
        return findings;
    }
    let all_body = fault_point_all_body(span_content);
    for variant in &variants {
        let qualified = format!("SpanKind::{variant}");
        let snake = snake_case(variant);
        let in_all = all_body.contains(&qualified);
        if !in_all {
            findings.push(Finding::new(
                path,
                format!("span kind `{variant}` is missing from `SpanKind::ALL`"),
            ));
        }
        if !span_content.contains(&format!("\"{snake}\"")) {
            findings.push(Finding::new(
                path,
                format!("span kind `{variant}` has no stable `name()` string \"{snake}\""),
            ));
        }
        if !emitters.iter().any(|(_, c)| c.contains(&qualified)) {
            findings.push(Finding::new(
                path,
                format!(
                    "span kind `{variant}` is never emitted by the serving stack \
                     (emit it, or retire it from the catalog)"
                ),
            ));
        }
        let exercised = coverage.iter().any(|(_, c)| {
            c.contains(&qualified)
                || c.contains(&format!("\"{snake}\""))
                || (in_all && c.contains("SpanKind::ALL"))
        });
        if !exercised {
            findings.push(Finding::new(
                path,
                format!(
                    "span kind `{variant}` is not exercised by any serve test or the \
                     service_trace report (assert on it, or sweep `SpanKind::ALL`)"
                ),
            ));
        }
    }
    findings
}

/// Check 8: the fleet's placement-policy catalog stays honest. Every
/// `PlacementPolicy` variant must be registered in
/// `PlacementPolicy::ALL`, carry its stable snake_case `name()`
/// string, be exercised by a coverage file (fleet sources/tests, the
/// `fleet_schedule` report) — by qualified name, by its snake_case
/// string, or via an iteration over `PlacementPolicy::ALL` — and be
/// listed by its snake_case name in DESIGN.md.
pub fn check_placement_policies(
    path: &str,
    placement_content: &str,
    coverage: &[(String, String)],
    design: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let variants = plain_enum_variants(placement_content, "pub enum PlacementPolicy");
    if variants.is_empty() {
        findings.push(Finding::new(
            path,
            "no `pub enum PlacementPolicy` variants found (the policy catalog lint needs them)",
        ));
        return findings;
    }
    let all_body = fault_point_all_body(placement_content);
    for variant in &variants {
        let qualified = format!("PlacementPolicy::{variant}");
        let snake = snake_case(variant);
        let in_all = all_body.contains(&qualified);
        if !in_all {
            findings.push(Finding::new(
                path,
                format!("placement policy `{variant}` is missing from `PlacementPolicy::ALL`"),
            ));
        }
        if !placement_content.contains(&format!("\"{snake}\"")) {
            findings.push(Finding::new(
                path,
                format!("placement policy `{variant}` has no stable `name()` string \"{snake}\""),
            ));
        }
        let exercised = coverage.iter().any(|(_, c)| {
            c.contains(&qualified)
                || c.contains(&format!("\"{snake}\""))
                || (in_all && c.contains("PlacementPolicy::ALL"))
        });
        if !exercised {
            findings.push(Finding::new(
                path,
                format!(
                    "placement policy `{variant}` is not exercised by any fleet test or the \
                     fleet_schedule report (schedule with it, or sweep `PlacementPolicy::ALL`)"
                ),
            ));
        }
        if !design.contains(&snake) {
            findings.push(Finding::new(
                path,
                format!(
                    "placement policy `{variant}` is not listed in DESIGN.md \
                     (document \"{snake}\" in the policy catalog section)"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(entries: &[(&str, &str)]) -> Vec<(String, String)> {
        entries
            .iter()
            .map(|(p, c)| ((*p).to_owned(), (*c).to_owned()))
            .collect()
    }

    #[test]
    fn unwrap_outside_allowlist_is_flagged() {
        let files = pairs(&[(
            "crates/foo/src/lib.rs",
            "pub fn f() { let x: Option<u8> = None; x.unwrap(); }",
        )]);
        let findings = check_unwraps(&files, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("1 non-test unwrap()"));
        assert!(findings[0].message.contains("line 1"));
    }

    #[test]
    fn allowlisted_unwrap_passes_and_test_code_is_ignored() {
        let files = pairs(&[
            (
                "crates/foo/src/lib.rs",
                "pub fn f() { g().expect(\"invariant\"); }",
            ),
            (
                "crates/bar/src/lib.rs",
                "pub fn f() {}\n#[cfg(test)]\nmod tests { fn t() { f().unwrap(); } }",
            ),
            (
                "crates/baz/src/lib.rs",
                "// a comment mentioning .unwrap() is fine\npub fn f() {}",
            ),
        ]);
        assert_eq!(check_unwraps(&files, &["crates/foo/src/lib.rs"]), vec![]);
    }

    #[test]
    fn stale_allowlist_entry_is_flagged() {
        let files = pairs(&[("crates/foo/src/lib.rs", "pub fn f() {}")]);
        let findings = check_unwraps(&files, &["crates/foo/src/lib.rs"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }

    #[test]
    fn missing_plain_twin_is_flagged() {
        let src = "pub fn fire_probed(sink: &mut S) -> u8 { 0 }";
        let findings = check_probe_twins("crates/maeri/src/switch.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no plain twin `fn fire`"));
    }

    #[test]
    fn non_delegating_twins_are_flagged() {
        // Both exist but each reimplements the logic independently.
        let src = "pub fn fire() -> u8 { compute() }\n\
                   pub fn fire_probed(sink: &mut S) -> u8 { compute_and_emit(sink) }";
        let findings = check_probe_twins("crates/maeri/src/switch.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("do not delegate"));
    }

    #[test]
    fn delegating_twins_pass_both_directions() {
        // Probed delegates to plain.
        let a = "pub fn fire() -> u8 { compute() }\n\
                 pub fn fire_probed(sink: &mut S) -> u8 { let v = self.fire(); sink.emit(); v }";
        assert_eq!(check_probe_twins("a.rs", a), vec![]);
        // Plain delegates to probed.
        let b = "pub fn run() -> u8 { run_probed(&mut NullSink) }\n\
                 pub fn run_probed<S>(sink: &mut S) -> u8 { 0 }";
        assert_eq!(check_probe_twins("b.rs", b), vec![]);
    }

    #[test]
    fn parallel_delegation_to_an_inner_pair_passes() {
        let src = "pub fn delivery() -> u8 { compute() }\n\
                   pub fn delivery_probed<S>(sink: &mut S) -> u8 { let v = self.delivery(); v }\n\
                   pub fn multicast() -> u8 { self.delivery() }\n\
                   pub fn multicast_probed<S>(sink: &mut S) -> u8 { self.delivery_probed(sink) }";
        assert_eq!(check_probe_twins("dist.rs", src), vec![]);
    }

    #[test]
    fn registry_gap_and_duplicate_are_flagged() {
        let src = r#"
pub const REPORTS: &[(usize, &str, fn())] = &[
    (1, "table1", table1::run),
    (3, "figure11", figure11::run),
    (4, "table1", table1::run),
];
"#;
        let findings = check_report_registry("mod.rs", src);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("position 2 holds id 3")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("duplicate report name \"table1\"")));
    }

    #[test]
    fn contiguous_registry_passes() {
        let src = r#"
pub const REPORTS: &[(usize, &str, fn())] = &[
    (1, "table1", table1::run),
    (2, "table3", table3::run),
];
"#;
        assert_eq!(check_report_registry("mod.rs", src), vec![]);
    }

    #[test]
    fn dangling_doc_path_is_flagged_once() {
        let doc = "See `crates/gone/src/lib.rs` and `/root/related/` and \
                   again `crates/gone/src/lib.rs`; globs `crates/*/src` and \
                   commands `examples/ok.rs --flag x` are fine, as is the \
                   trailing slash in `crates/ok/tests/`.";
        let exists = |p: &str| p.starts_with("crates/ok") || p == "examples/ok.rs";
        let findings = check_doc_paths("DESIGN.md", doc, &exists);
        assert_eq!(findings.len(), 2, "each dangling path flagged once");
        assert!(findings[0].message.contains("crates/gone/src/lib.rs"));
        assert!(findings[1].message.contains("/root/related"));
    }

    #[test]
    fn existing_doc_paths_pass() {
        let doc = "Built from `src/lib.rs`; CI is `.github/workflows/ci.yml`.";
        let exists = |p: &str| p == "src/lib.rs" || p == ".github/workflows/ci.yml";
        assert_eq!(check_doc_paths("README.md", doc, &exists), vec![]);
    }

    const CHAOS_FIXTURE: &str = r#"
pub enum FaultPoint {
    /// Docs.
    TornTail,
    WedgedWorker,
}
impl FaultPoint {
    pub const ALL: [FaultPoint; 2] = [
        FaultPoint::TornTail,
        FaultPoint::WedgedWorker,
    ];
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::TornTail => "torn_tail",
            FaultPoint::WedgedWorker => "wedged_worker",
        }
    }
}
"#;

    #[test]
    fn fault_points_swept_via_all_pass() {
        let coverage = pairs(&[(
            "crates/serve/tests/chaos.rs",
            "for fault in FaultPoint::ALL { run(fault); }",
        )]);
        assert_eq!(
            check_fault_points("chaos.rs", CHAOS_FIXTURE, &coverage),
            vec![]
        );
    }

    #[test]
    fn unexercised_fault_point_is_flagged() {
        let coverage = pairs(&[("crates/serve/tests/chaos.rs", "run(FaultPoint::TornTail);")]);
        let findings = check_fault_points("chaos.rs", CHAOS_FIXTURE, &coverage);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`WedgedWorker`"));
        assert!(findings[0].message.contains("not exercised"));
    }

    #[test]
    fn fault_point_outside_all_or_without_name_is_flagged() {
        // `Extra` exists but is neither in ALL nor named, and the
        // ALL sweep in coverage cannot reach it.
        let src =
            CHAOS_FIXTURE.replace("pub enum FaultPoint {", "pub enum FaultPoint {\n    Extra,");
        let coverage = pairs(&[(
            "crates/serve/tests/chaos.rs",
            "for fault in FaultPoint::ALL { run(fault); }",
        )]);
        let findings = check_fault_points("chaos.rs", &src, &coverage);
        assert!(findings.iter().any(|f| f
            .message
            .contains("`Extra` is missing from `FaultPoint::ALL`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("no stable `name()` string \"extra\"")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("`Extra` is not exercised")));
    }

    #[test]
    fn missing_fault_point_enum_is_flagged() {
        let findings = check_fault_points("chaos.rs", "pub fn nothing() {}", &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `pub enum FaultPoint`"));
    }

    const SPAN_FIXTURE: &str = r#"
pub enum SpanKind {
    /// Docs.
    QueueWait,
    Dispatch,
}
impl SpanKind {
    pub const ALL: [SpanKind; 2] = [
        SpanKind::QueueWait,
        SpanKind::Dispatch,
    ];
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Dispatch => "dispatch",
        }
    }
}
"#;

    #[test]
    fn emitted_and_swept_span_kinds_pass() {
        let emitters = pairs(&[(
            "crates/serve/src/service.rs",
            "rec(SpanKind::QueueWait); rec(SpanKind::Dispatch);",
        )]);
        let coverage = pairs(&[(
            "crates/serve/tests/trace.rs",
            "for kind in SpanKind::ALL { assert_present(kind); }",
        )]);
        assert_eq!(
            check_span_kinds("span.rs", SPAN_FIXTURE, &emitters, &coverage),
            vec![]
        );
    }

    #[test]
    fn unemitted_and_unexercised_span_kind_is_flagged() {
        let emitters = pairs(&[("crates/serve/src/service.rs", "rec(SpanKind::QueueWait);")]);
        let coverage = pairs(&[("crates/serve/tests/trace.rs", "has(SpanKind::QueueWait);")]);
        let findings = check_span_kinds("span.rs", SPAN_FIXTURE, &emitters, &coverage);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("`Dispatch` is never emitted"));
        assert!(findings[1].message.contains("`Dispatch` is not exercised"));
    }

    #[test]
    fn snake_case_name_string_counts_as_coverage() {
        let emitters = pairs(&[(
            "crates/serve/src/service.rs",
            "rec(SpanKind::QueueWait); rec(SpanKind::Dispatch);",
        )]);
        let coverage = pairs(&[(
            "crates/serve/tests/trace.rs",
            r#"assert!(log.contains("queue_wait") && log.contains("dispatch"));"#,
        )]);
        assert_eq!(
            check_span_kinds("span.rs", SPAN_FIXTURE, &emitters, &coverage),
            vec![]
        );
    }

    #[test]
    fn span_kind_outside_all_or_without_name_is_flagged() {
        // `Extra` exists but is neither in ALL nor named, so the ALL
        // sweep in coverage cannot reach it.
        let src = SPAN_FIXTURE.replace("pub enum SpanKind {", "pub enum SpanKind {\n    Extra,");
        let emitters = pairs(&[(
            "crates/serve/src/service.rs",
            "rec(SpanKind::QueueWait); rec(SpanKind::Dispatch); rec(SpanKind::Extra);",
        )]);
        let coverage = pairs(&[(
            "crates/serve/tests/trace.rs",
            "for kind in SpanKind::ALL { assert_present(kind); }",
        )]);
        let findings = check_span_kinds("span.rs", &src, &emitters, &coverage);
        assert!(findings.iter().any(|f| f
            .message
            .contains("`Extra` is missing from `SpanKind::ALL`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("no stable `name()` string \"extra\"")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("`Extra` is not exercised")));
    }

    #[test]
    fn missing_span_kind_enum_is_flagged() {
        let findings = check_span_kinds("span.rs", "pub fn nothing() {}", &[], &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `pub enum SpanKind`"));
    }

    const PLACEMENT_FIXTURE: &str = r#"
pub enum PlacementPolicy {
    /// Docs.
    HomogeneousMaeri,
    Greedy,
}
impl PlacementPolicy {
    pub const ALL: [PlacementPolicy; 2] = [
        PlacementPolicy::HomogeneousMaeri,
        PlacementPolicy::Greedy,
    ];
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::HomogeneousMaeri => "homogeneous_maeri",
            PlacementPolicy::Greedy => "greedy",
        }
    }
}
"#;

    #[test]
    fn swept_and_documented_placement_policies_pass() {
        let coverage = pairs(&[(
            "crates/fleet/tests/fleet_scheduling.rs",
            "for policy in PlacementPolicy::ALL { simulate(policy); }",
        )]);
        let design = "Policies: `homogeneous_maeri` baseline, `greedy` best-backend.";
        assert_eq!(
            check_placement_policies("placement.rs", PLACEMENT_FIXTURE, &coverage, design),
            vec![]
        );
    }

    #[test]
    fn unexercised_and_undocumented_placement_policy_is_flagged() {
        let coverage = pairs(&[(
            "crates/fleet/tests/fleet_scheduling.rs",
            "simulate(PlacementPolicy::HomogeneousMaeri);",
        )]);
        let design = "Policies: `homogeneous_maeri` baseline.";
        let findings =
            check_placement_policies("placement.rs", PLACEMENT_FIXTURE, &coverage, design);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("`Greedy` is not exercised"));
        assert!(findings[1]
            .message
            .contains("`Greedy` is not listed in DESIGN.md"));
    }

    #[test]
    fn placement_policy_outside_all_or_without_name_is_flagged() {
        // `Extra` is neither in ALL nor named, so the ALL sweep in
        // coverage cannot reach it.
        let src = PLACEMENT_FIXTURE.replace(
            "pub enum PlacementPolicy {",
            "pub enum PlacementPolicy {\n    Extra,",
        );
        let coverage = pairs(&[(
            "crates/fleet/tests/fleet_scheduling.rs",
            "for policy in PlacementPolicy::ALL { simulate(policy); }",
        )]);
        let design = "Policies: `homogeneous_maeri`, `greedy`, `extra`.";
        let findings = check_placement_policies("placement.rs", &src, &coverage, design);
        assert!(findings.iter().any(|f| f
            .message
            .contains("`Extra` is missing from `PlacementPolicy::ALL`")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("no stable `name()` string \"extra\"")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("`Extra` is not exercised")));
    }

    #[test]
    fn missing_placement_policy_enum_is_flagged() {
        let findings = check_placement_policies("placement.rs", "pub fn nothing() {}", &[], "");
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("no `pub enum PlacementPolicy`"));
    }

    #[test]
    fn missing_forbid_header_is_flagged() {
        assert_eq!(
            check_forbid_unsafe("lib.rs", "//! docs\npub fn f() {}").len(),
            1
        );
        assert_eq!(
            check_forbid_unsafe("lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}"),
            vec![]
        );
    }
}
