//! Repo automation tasks. Usage: `cargo run -p xtask -- <task>`.
//!
//! `lint` walks the workspace and enforces the invariants implemented
//! in [`lint`] (probe-twin sync, the unwrap allowlist, report-registry
//! contiguity, `#![forbid(unsafe_code)]` headers, dangling doc-path
//! references, chaos fault-point coverage, span-kind catalog coverage,
//! placement-policy catalog coverage). `analyze` runs the
//! `maeri-analyze` determinism analyzer over the workspace and fails
//! on any finding outside `analyze-suppressions.txt` (and on any
//! stale suppression). Both exit non-zero with one line per finding
//! so CI can gate on them.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some("analyze") => run_analyze(),
        other => {
            eprintln!(
                "unknown task {:?}; available tasks: lint, analyze",
                other.unwrap_or("<none>")
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs the determinism analyzer over the whole workspace.
fn run_analyze() -> ExitCode {
    let root = workspace_root();
    let analysis = match maeri_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask analyze: workspace walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &analysis.findings {
        eprintln!(
            "xtask analyze: {}:{}: [{}] {}\n    fix: {}",
            f.path,
            f.line,
            f.rule.name(),
            f.message,
            f.rule.hint()
        );
    }
    for e in &analysis.suppress_errors {
        eprintln!("xtask analyze: {e}");
    }
    let s = analysis.stats;
    let per_rule: Vec<String> = analysis
        .per_rule()
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{}={n}", r.name()))
        .collect();
    println!(
        "xtask analyze: {} files, {} fns ({} output-path), {} suppression(s) in use{}",
        s.files,
        s.functions,
        s.output_functions,
        s.suppressions_in_use,
        if per_rule.is_empty() {
            String::new()
        } else {
            format!("; findings: {}", per_rule.join(" "))
        }
    );
    if analysis.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask analyze: {} finding(s), {} suppression error(s)",
            analysis.findings.len(),
            analysis.suppress_errors.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, returning
/// repo-relative slash-separated paths paired with file contents.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths live under the workspace root")
                .to_string_lossy()
                .replace('\\', "/");
            let content = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("failed to read {rel}: {e}"));
            out.push((rel, content));
        }
    }
}

/// Lists the immediate subdirectories of `root/group` (e.g. every crate
/// under `crates/`).
fn subdirs(root: &Path, group: &str) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(root.join(group)) else {
        return Vec::new();
    };
    let mut dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();

    // Library source scope: src/ of the facade crate plus every crate
    // and compat shim, excluding xtask itself (its lint literals and
    // fixtures would trip the scans).
    let mut sources: Vec<(String, String)> = Vec::new();
    collect_rs(&root, &root.join("src"), &mut sources);
    for group in ["crates", "compat"] {
        for dir in subdirs(&root, group) {
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            collect_rs(&root, &dir.join("src"), &mut sources);
        }
    }

    // 1. Probe twins in the fabric crates.
    for (path, content) in &sources {
        if path.starts_with("crates/maeri/src") || path.starts_with("crates/noc/src") {
            findings.extend(lint::check_probe_twins(path, content));
        }
    }

    // 2. Non-test unwrap()/expect() against the allowlist.
    findings.extend(lint::check_unwraps(&sources, lint::UNWRAP_ALLOWLIST));

    // 3. Report registry ids.
    let registry = "crates/bench/src/reports/mod.rs";
    match sources.iter().find(|(p, _)| p == registry) {
        Some((path, content)) => findings.extend(lint::check_report_registry(path, content)),
        None => findings.push(lint::Finding {
            path: registry.to_owned(),
            message: "report registry file is missing".to_owned(),
        }),
    }

    // 4. `#![forbid(unsafe_code)]` on every crate entry point.
    for (path, content) in &sources {
        if path.ends_with("/lib.rs") || path == "src/lib.rs" {
            findings.extend(lint::check_forbid_unsafe(path, content));
        }
    }

    // 5. No dangling path references in the top-level docs.
    let exists = |candidate: &str| {
        if candidate.starts_with('/') {
            Path::new(candidate).exists()
        } else {
            root.join(candidate).exists()
        }
    };
    for doc in ["README.md", "ROADMAP.md", "DESIGN.md", "EXPERIMENTS.md"] {
        if let Ok(content) = std::fs::read_to_string(root.join(doc)) {
            findings.extend(lint::check_doc_paths(doc, &content, &exists));
        }
    }

    // 6. Every chaos fault point is exercised by a test or the
    //    chaos_recovery report. Integration tests live under
    //    `crates/serve/tests/` (outside the src/ scan scope), so they
    //    are collected separately; the chaos module's own test block
    //    and the report source also count as coverage.
    let chaos_path = "crates/serve/src/chaos.rs";
    match sources.iter().find(|(p, _)| p == chaos_path) {
        Some((path, content)) => {
            let mut coverage: Vec<(String, String)> = Vec::new();
            collect_rs(&root, &root.join("crates/serve/tests"), &mut coverage);
            for covered in [chaos_path, "crates/bench/src/reports/chaos_recovery.rs"] {
                if let Some(pair) = sources.iter().find(|(p, _)| p == covered) {
                    coverage.push(pair.clone());
                }
            }
            findings.extend(lint::check_fault_points(path, content, &coverage));
        }
        None => findings.push(lint::Finding {
            path: chaos_path.to_owned(),
            message: "chaos harness module is missing".to_owned(),
        }),
    }

    // 7. Every trace span kind is registered, named, emitted by the
    //    serving stack, and exercised by a serve test or the
    //    service_trace report — the trace vocabulary cannot drift from
    //    its emitters or its tests.
    let span_path = "crates/telemetry/src/span.rs";
    match sources.iter().find(|(p, _)| p == span_path) {
        Some((path, content)) => {
            let emitters: Vec<(String, String)> = sources
                .iter()
                .filter(|(p, _)| {
                    p.starts_with("crates/serve/src") || p.starts_with("crates/runtime/src")
                })
                .cloned()
                .collect();
            let mut coverage: Vec<(String, String)> = Vec::new();
            collect_rs(&root, &root.join("crates/serve/tests"), &mut coverage);
            if let Some(pair) = sources
                .iter()
                .find(|(p, _)| p == "crates/bench/src/reports/service_trace.rs")
            {
                coverage.push(pair.clone());
            }
            findings.extend(lint::check_span_kinds(path, content, &emitters, &coverage));
        }
        None => findings.push(lint::Finding {
            path: span_path.to_owned(),
            message: "span catalog module is missing".to_owned(),
        }),
    }

    // 8. Every fleet placement policy is registered, named, exercised
    //    by a fleet test or the fleet_schedule report, and documented
    //    in DESIGN.md — the scheduling catalog cannot drift from its
    //    tests or its docs.
    let placement_path = "crates/fleet/src/placement.rs";
    match sources.iter().find(|(p, _)| p == placement_path) {
        Some((path, content)) => {
            let mut coverage: Vec<(String, String)> = sources
                .iter()
                .filter(|(p, _)| p.starts_with("crates/fleet/src"))
                .cloned()
                .collect();
            collect_rs(&root, &root.join("crates/fleet/tests"), &mut coverage);
            if let Some(pair) = sources
                .iter()
                .find(|(p, _)| p == "crates/bench/src/reports/fleet_schedule.rs")
            {
                coverage.push(pair.clone());
            }
            let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
            findings.extend(lint::check_placement_policies(
                path, content, &coverage, &design,
            ));
        }
        None => findings.push(lint::Finding {
            path: placement_path.to_owned(),
            message: "placement-policy catalog module is missing".to_owned(),
        }),
    }

    if findings.is_empty() {
        println!(
            "xtask lint: {} source files checked, no findings",
            sources.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("xtask lint: {}: {}", f.path, f.message);
        }
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
