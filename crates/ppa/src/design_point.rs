//! Accelerator design points (Table 3, Figure 11).

use serde::{Deserialize, Serialize};

use crate::components::{self as c, Cost};

/// Which accelerator organization a design point models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AcceleratorKind {
    /// Eyeriss-style PEs (MAC + register file + control) on buses.
    Eyeriss,
    /// Weight-stationary systolic array of bare MACs.
    SystolicArray,
    /// MAERI: multiplier/adder switches plus tree networks.
    Maeri,
}

impl AcceleratorKind {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AcceleratorKind::Eyeriss => "Eyeriss",
            AcceleratorKind::SystolicArray => "Systolic Array",
            AcceleratorKind::Maeri => "MAERI",
        }
    }

    /// Cost of one processing element (compute unit plus everything
    /// that scales with it), with `local_bytes` of per-PE storage.
    #[must_use]
    pub fn per_pe_cost(&self, local_bytes: usize) -> Cost {
        match self {
            AcceleratorKind::Eyeriss => c::multiplier16()
                .plus(c::adder16())
                .plus(c::regfile_per_byte().times(local_bytes as f64))
                .plus(c::eyeriss_pe_extras()),
            AcceleratorKind::SystolicArray => c::multiplier16()
                .plus(c::adder16())
                .plus(c::systolic_pe_extras()),
            AcceleratorKind::Maeri => c::multiplier16()
                .plus(c::fifo_per_byte().times(local_bytes as f64))
                .plus(c::ms_control())
                // One adder switch per multiplier switch (N-1 ~ N),
                // plus one distribution simple switch.
                .plus(c::adder16())
                .plus(c::as_routing())
                .plus(c::simple_switch())
                .plus(c::tree_wiring_per_ms()),
        }
    }
}

/// One complete design point: array plus prefetch buffer.
///
/// # Example
///
/// ```
/// use maeri_ppa::DesignPoint;
///
/// let maeri = DesignPoint::maeri_comp_match();
/// let area = maeri.area_um2();
/// assert!((area / 1e6 - 3.84).abs() < 0.05); // Table 3: 3.84 mm²
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Organization.
    pub kind: AcceleratorKind,
    /// Number of PEs (multiplier switches for MAERI).
    pub num_pes: usize,
    /// Local storage per PE in bytes (0 for the systolic array).
    pub local_bytes: usize,
    /// Prefetch-buffer capacity in KB.
    pub pb_kb: usize,
}

impl DesignPoint {
    /// The Eyeriss reference point: 168 PEs, 512 B/PE, 108 KB buffer.
    #[must_use]
    pub fn eyeriss_baseline() -> Self {
        DesignPoint {
            kind: AcceleratorKind::Eyeriss,
            num_pes: 168,
            local_bytes: 512,
            pb_kb: 108,
        }
    }

    /// Systolic array with Eyeriss's compute count (Table 3 column 2).
    #[must_use]
    pub fn systolic_comp_match() -> Self {
        DesignPoint {
            kind: AcceleratorKind::SystolicArray,
            num_pes: 168,
            local_bytes: 0,
            pb_kb: 80,
        }
    }

    /// Systolic array grown to Eyeriss's area (Table 3 column 3).
    #[must_use]
    pub fn systolic_area_match() -> Self {
        let mut point = DesignPoint::systolic_comp_match();
        point.num_pes = point.pes_for_area(6.0e6);
        point
    }

    /// MAERI with Eyeriss's compute count (Table 3 column 4).
    #[must_use]
    pub fn maeri_comp_match() -> Self {
        DesignPoint {
            kind: AcceleratorKind::Maeri,
            num_pes: 168,
            local_bytes: 512,
            pb_kb: 80,
        }
    }

    /// MAERI grown to Eyeriss's area (Table 3 column 5).
    #[must_use]
    pub fn maeri_area_match() -> Self {
        let mut point = DesignPoint::maeri_comp_match();
        point.num_pes = point.pes_for_area(6.0e6);
        point
    }

    /// All five Table 3 design points, in the table's column order.
    #[must_use]
    pub fn table3() -> Vec<DesignPoint> {
        vec![
            DesignPoint::eyeriss_baseline(),
            DesignPoint::systolic_comp_match(),
            DesignPoint::systolic_area_match(),
            DesignPoint::maeri_comp_match(),
            DesignPoint::maeri_area_match(),
        ]
    }

    /// Total area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.total_cost().area_um2
    }

    /// Total power in mW at 200 MHz.
    #[must_use]
    pub fn power_mw(&self) -> f64 {
        self.total_cost().power_mw
    }

    /// Area of the PE array only (no prefetch buffer) — the quantity
    /// plotted in Figure 11(e).
    #[must_use]
    pub fn core_area_um2(&self) -> f64 {
        self.kind
            .per_pe_cost(self.local_bytes)
            .times(self.num_pes as f64)
            .area_um2
    }

    fn total_cost(&self) -> Cost {
        self.kind
            .per_pe_cost(self.local_bytes)
            .times(self.num_pes as f64)
            .plus(c::sram_per_kb().times(self.pb_kb as f64))
    }

    /// Area/power breakdown for Figure 11(a-d): `(component, cost)`.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(String, Cost)> {
        let n = self.num_pes as f64;
        let mut parts: Vec<(String, Cost)> = Vec::new();
        parts.push((
            "prefetch buffer".to_owned(),
            c::sram_per_kb().times(self.pb_kb as f64),
        ));
        match self.kind {
            AcceleratorKind::Eyeriss => {
                parts.push(("multipliers".into(), c::multiplier16().times(n)));
                parts.push(("adders".into(), c::adder16().times(n)));
                parts.push((
                    "local register files".into(),
                    c::regfile_per_byte().times(self.local_bytes as f64 * n),
                ));
                parts.push(("PE control + NoC".into(), c::eyeriss_pe_extras().times(n)));
            }
            AcceleratorKind::SystolicArray => {
                parts.push(("multipliers".into(), c::multiplier16().times(n)));
                parts.push(("adders".into(), c::adder16().times(n)));
                parts.push((
                    "pipeline + control".into(),
                    c::systolic_pe_extras().times(n),
                ));
            }
            AcceleratorKind::Maeri => {
                parts.push(("multipliers".into(), c::multiplier16().times(n)));
                parts.push((
                    "local FIFOs".into(),
                    c::fifo_per_byte().times(self.local_bytes as f64 * n),
                ));
                parts.push(("adders".into(), c::adder16().times(n)));
                parts.push((
                    "switches (MS+AS+SS)".into(),
                    c::ms_control()
                        .plus(c::as_routing())
                        .plus(c::simple_switch())
                        .times(n),
                ));
                parts.push(("tree wiring".into(), c::tree_wiring_per_ms().times(n)));
            }
        }
        parts
    }

    /// How many PEs of this kind fit in `area_um2` alongside the
    /// prefetch buffer.
    #[must_use]
    pub fn pes_for_area(&self, area_um2: f64) -> usize {
        let pb = c::sram_per_kb().times(self.pb_kb as f64).area_um2;
        let per_pe = self.kind.per_pe_cost(self.local_bytes).area_um2;
        ((area_um2 - pb) / per_pe).floor().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm2(point: &DesignPoint) -> f64 {
        point.area_um2() / 1e6
    }

    #[test]
    fn table3_areas_match_paper() {
        assert!((mm2(&DesignPoint::eyeriss_baseline()) - 6.00).abs() < 0.05);
        assert!((mm2(&DesignPoint::systolic_comp_match()) - 2.62).abs() < 0.05);
        assert!((mm2(&DesignPoint::maeri_comp_match()) - 3.84).abs() < 0.05);
        assert!((mm2(&DesignPoint::systolic_area_match()) - 6.00).abs() < 0.02);
        assert!((mm2(&DesignPoint::maeri_area_match()) - 6.00).abs() < 0.02);
    }

    #[test]
    fn table3_area_match_pe_counts() {
        // Paper: 1192 systolic PEs and 374 MAERI switches at 6 mm².
        let sa = DesignPoint::systolic_area_match();
        assert!((sa.num_pes as i64 - 1192).abs() <= 15, "{}", sa.num_pes);
        let maeri = DesignPoint::maeri_area_match();
        assert!((maeri.num_pes as i64 - 374).abs() <= 5, "{}", maeri.num_pes);
    }

    #[test]
    fn density_multiples_vs_eyeriss() {
        // "MAERI and systolic array can house 2.23x and 7.09x more
        // compute units than Eyeriss" for the same area.
        let maeri_ratio = DesignPoint::maeri_area_match().num_pes as f64 / 168.0;
        let sa_ratio = DesignPoint::systolic_area_match().num_pes as f64 / 168.0;
        assert!((maeri_ratio - 2.23).abs() < 0.05, "{maeri_ratio}");
        assert!((sa_ratio - 7.09).abs() < 0.15, "{sa_ratio}");
    }

    #[test]
    fn maeri_power_overhead_vs_eyeriss_is_about_6_5_percent() {
        let maeri = DesignPoint::maeri_comp_match().power_mw();
        let eyeriss = DesignPoint::eyeriss_baseline().power_mw();
        let overhead = maeri / eyeriss - 1.0;
        assert!((overhead - 0.065).abs() < 0.02, "power overhead {overhead}");
    }

    #[test]
    fn area_reduction_vs_eyeriss_is_about_36_8_percent() {
        let maeri = DesignPoint::maeri_comp_match().area_um2();
        let eyeriss = DesignPoint::eyeriss_baseline().area_um2();
        let reduction = 1.0 - maeri / eyeriss;
        assert!(
            (reduction - 0.368).abs() < 0.02,
            "area reduction {reduction}"
        );
    }

    #[test]
    fn systolic_is_cheapest_at_comp_match() {
        // Paper: "the systolic array required the smallest area and
        // power because of its simple structure".
        let sa = DesignPoint::systolic_comp_match();
        let maeri = DesignPoint::maeri_comp_match();
        let eyeriss = DesignPoint::eyeriss_baseline();
        assert!(sa.area_um2() < maeri.area_um2());
        assert!(sa.power_mw() < maeri.power_mw());
        assert!(maeri.area_um2() < eyeriss.area_um2());
        assert!(sa.power_mw() < eyeriss.power_mw());
    }

    #[test]
    fn prefetch_buffer_dominates_breakdown() {
        // Paper: "The prefetch buffer (SRAM) dominates in both area and
        // power in the two designs."
        for point in [
            DesignPoint::eyeriss_baseline(),
            DesignPoint::maeri_comp_match(),
        ] {
            let parts = point.breakdown();
            let pb = parts
                .iter()
                .find(|(name, _)| name == "prefetch buffer")
                .unwrap()
                .1;
            for (name, cost) in &parts {
                if name != "prefetch buffer" {
                    assert!(
                        pb.area_um2 > cost.area_um2,
                        "{} out-areas the PB in {}",
                        name,
                        point.kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        for point in DesignPoint::table3() {
            let parts = point.breakdown();
            let sum_area: f64 = parts.iter().map(|(_, c)| c.area_um2).sum();
            let sum_power: f64 = parts.iter().map(|(_, c)| c.power_mw).sum();
            assert!((sum_area - point.area_um2()).abs() < 1.0);
            assert!((sum_power - point.power_mw()).abs() < 0.01);
        }
    }

    #[test]
    fn figure11e_core_area_ordering() {
        // Per-PE core area: systolic < MAERI < Eyeriss at every size.
        for n in [16usize, 32, 64, 128, 256] {
            let mk = |kind, local| DesignPoint {
                kind,
                num_pes: n,
                local_bytes: local,
                pb_kb: 80,
            };
            let sa = mk(AcceleratorKind::SystolicArray, 0).core_area_um2();
            let maeri = mk(AcceleratorKind::Maeri, 512).core_area_um2();
            let eyeriss = mk(AcceleratorKind::Eyeriss, 512).core_area_um2();
            assert!(sa < maeri && maeri < eyeriss, "ordering broke at n={n}");
        }
    }

    #[test]
    fn pes_for_area_is_inverse_of_area() {
        let point = DesignPoint::maeri_comp_match();
        let grown = point.pes_for_area(point.area_um2());
        assert!((grown as i64 - point.num_pes as i64).abs() <= 1);
    }
}
