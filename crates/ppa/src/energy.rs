//! Per-operation energy model (28 nm, 16-bit datapath).
//!
//! The paper's motivation is performance/watt: reduced SRAM traffic
//! (weight reuse in multiplier switches, multicast distribution, local
//! forwarding) is MAERI's energy story versus the systolic array's
//! re-streaming. This module turns the traffic counters of a
//! [`maeri::engine::RunStats`] into energy, using per-access constants
//! in picojoules consistent with published 28-32 nm numbers (Horowitz,
//! ISSCC 2014 keynote, scaled to 16-bit).

use maeri::engine::RunStats;
use serde::{Deserialize, Serialize};

/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One 16-bit multiply.
    pub mult_pj: f64,
    /// One 16-bit add (or comparator op).
    pub add_pj: f64,
    /// One word read from the prefetch-buffer SRAM.
    pub sram_read_pj: f64,
    /// One word written to the prefetch-buffer SRAM.
    pub sram_write_pj: f64,
    /// One word over a DRAM channel.
    pub dram_pj: f64,
    /// One word traversing one on-chip network hop.
    pub noc_hop_pj: f64,
    /// Average NoC hops per word moved (tree depth for MAERI, array
    /// dimension for a systolic array).
    pub avg_hops: f64,
}

impl EnergyModel {
    /// The default 28 nm model for a MAERI-class fabric with 64
    /// multipliers (6-level trees).
    #[must_use]
    pub fn maeri_64() -> Self {
        EnergyModel {
            mult_pj: 1.0,
            add_pj: 0.2,
            sram_read_pj: 5.0,
            sram_write_pj: 5.5,
            dram_pj: 320.0,
            noc_hop_pj: 0.15,
            avg_hops: 6.0,
        }
    }

    /// The same constants with a systolic array's hop profile (words
    /// ripple one PE per cycle; average traversal half the array).
    #[must_use]
    pub fn systolic_8x8() -> Self {
        EnergyModel {
            avg_hops: 8.0,
            ..EnergyModel::maeri_64()
        }
    }

    /// Energy of one layer run, in nanojoules.
    ///
    /// Every MAC is one multiply plus one add; every SRAM word also
    /// traverses the NoC.
    #[must_use]
    pub fn run_energy_nj(&self, run: &RunStats) -> f64 {
        let compute = run.macs as f64 * (self.mult_pj + self.add_pj);
        let sram =
            run.sram_reads as f64 * self.sram_read_pj + run.sram_writes as f64 * self.sram_write_pj;
        let noc = (run.sram_reads + run.sram_writes) as f64 * self.noc_hop_pj * self.avg_hops;
        (compute + sram + noc) / 1000.0
    }

    /// Energy of moving `words` over DRAM, in nanojoules — used to
    /// price the DRAM traffic that cross-layer fusion avoids.
    #[must_use]
    pub fn dram_energy_nj(&self, words: u64) -> f64 {
        words as f64 * self.dram_pj / 1000.0
    }

    /// Energy efficiency in MACs per nanojoule.
    #[must_use]
    pub fn macs_per_nj(&self, run: &RunStats) -> f64 {
        let energy = self.run_energy_nj(run);
        if energy == 0.0 {
            0.0
        } else {
            run.macs as f64 / energy
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::maeri_64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maeri_sim::Cycle;

    fn run(macs: u64, reads: u64, writes: u64) -> RunStats {
        let mut r = RunStats::new("x", 64, Cycle::new(1000), macs);
        r.sram_reads = reads;
        r.sram_writes = writes;
        r
    }

    #[test]
    fn energy_scales_with_traffic() {
        let model = EnergyModel::maeri_64();
        let lean = model.run_energy_nj(&run(1000, 100, 10));
        let heavy = model.run_energy_nj(&run(1000, 1000, 10));
        assert!(heavy > lean);
        // Compute-only part: 1000 * 1.2 pJ = 1.2 nJ.
        let compute_only = model.run_energy_nj(&run(1000, 0, 0));
        assert!((compute_only - 1.2).abs() < 1e-9);
    }

    #[test]
    fn sram_dominates_compute_at_parity_traffic() {
        // The classic accelerator energy hierarchy: one SRAM word costs
        // several MACs.
        let model = EnergyModel::maeri_64();
        assert!(model.sram_read_pj > 3.0 * (model.mult_pj + model.add_pj));
        assert!(model.dram_pj > 50.0 * model.sram_read_pj);
    }

    #[test]
    fn fewer_reads_means_less_energy_for_same_macs() {
        // MAERI's 516 reads vs the systolic array's 1323 on Fig. 17.
        let maeri = EnergyModel::maeri_64().run_energy_nj(&run(5400, 516, 200));
        let systolic = EnergyModel::systolic_8x8().run_energy_nj(&run(5400, 1323, 200));
        assert!(maeri < systolic);
        let ratio = systolic / maeri;
        assert!(ratio > 1.3, "energy ratio {ratio}");
    }

    #[test]
    fn dram_energy_prices_fusion_savings() {
        let model = EnergyModel::maeri_64();
        // 64896 intermediate activations of AlexNet conv3+4 stay on
        // chip: ~20 uJ of DRAM traffic avoided.
        let saved = model.dram_energy_nj(64896);
        assert!((saved - 64896.0 * 0.32).abs() < 1.0);
    }

    #[test]
    fn macs_per_nj_is_finite_and_positive() {
        let model = EnergyModel::default();
        let eff = model.macs_per_nj(&run(10_000, 500, 100));
        assert!(eff > 0.0 && eff.is_finite());
        assert_eq!(model.macs_per_nj(&run(0, 0, 0)), 0.0);
    }
}
