//! 28 nm component library (16-bit datapath, 200 MHz).
//!
//! Area in µm², power in mW. Constants are first-order 28 nm estimates
//! calibrated so the assembled design points reproduce the aggregates
//! of Table 3 (see crate docs); unit tests in
//! [`crate::design_point`] pin the calibration.

/// Area and power of one instance of a component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Power at 200 MHz in mW.
    pub power_mw: f64,
}

impl Cost {
    /// Scales the cost by a count.
    #[must_use]
    pub fn times(self, count: f64) -> Cost {
        Cost {
            area_um2: self.area_um2 * count,
            power_mw: self.power_mw * count,
        }
    }

    /// Sums two costs.
    #[must_use]
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            area_um2: self.area_um2 + other.area_um2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// The zero cost.
    #[must_use]
    pub fn zero() -> Cost {
        Cost {
            area_um2: 0.0,
            power_mw: 0.0,
        }
    }
}

/// Prefetch-buffer SRAM, per kilobyte (banked, with peripherals).
#[must_use]
pub fn sram_per_kb() -> Cost {
    Cost {
        area_um2: 25_820.0,
        power_mw: 1.40,
    }
}

/// 16-bit multiplier.
#[must_use]
pub fn multiplier16() -> Cost {
    Cost {
        area_um2: 1_800.0,
        power_mw: 0.45,
    }
}

/// 16-bit adder (or comparator).
#[must_use]
pub fn adder16() -> Cost {
    Cost {
        area_um2: 640.0,
        power_mw: 0.11,
    }
}

/// Simple FIFO storage, per byte — MAERI's multiplier-switch local
/// buffer. Cheap: no random addressing.
#[must_use]
pub fn fifo_per_byte() -> Cost {
    Cost {
        area_um2: 7.8,
        power_mw: 0.000_68,
    }
}

/// Fully-addressable register file, per byte — an Eyeriss PE's local
/// scratchpad. Roughly 3x a FIFO byte: decoders, muxes, multiported
/// cells.
#[must_use]
pub fn regfile_per_byte() -> Cost {
    Cost {
        area_um2: 24.2,
        power_mw: 0.001_15,
    }
}

/// MAERI multiplier-switch control (config register, select logic).
#[must_use]
pub fn ms_control() -> Cost {
    Cost {
        area_um2: 520.0,
        power_mw: 0.085,
    }
}

/// MAERI adder-switch routing portion (modes, forwarding-link ports).
#[must_use]
pub fn as_routing() -> Cost {
    Cost {
        area_um2: 500.0,
        power_mw: 0.075,
    }
}

/// Distribution-tree simple switch (bufferless demux).
#[must_use]
pub fn simple_switch() -> Cost {
    Cost {
        area_um2: 150.0,
        power_mw: 0.018,
    }
}

/// Tree wiring (both networks), amortized per multiplier switch. The
/// power term is comparatively high because MAERI's trees toggle every
/// cycle at near-100 % utilization (Section 5: "synthesis tools report
/// higher power in MAERI").
#[must_use]
pub fn tree_wiring_per_ms() -> Cost {
    Cost {
        area_um2: 2_916.0,
        power_mw: 0.82,
    }
}

/// Systolic PE extras beyond the MAC: pipeline registers and minimal
/// control (the simplest PE of the three designs).
#[must_use]
pub fn systolic_pe_extras() -> Cost {
    Cost {
        area_um2: 860.0,
        power_mw: 0.12,
    }
}

/// Eyeriss PE extras beyond MAC + register file: PE control FSM,
/// network interface to the row/column buses.
#[must_use]
pub fn eyeriss_pe_extras() -> Cost {
    Cost {
        area_um2: 4_285.0,
        power_mw: 0.37,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_algebra() {
        let a = Cost {
            area_um2: 2.0,
            power_mw: 1.0,
        };
        let b = a.times(3.0).plus(Cost::zero());
        assert_eq!(b.area_um2, 6.0);
        assert_eq!(b.power_mw, 3.0);
    }

    #[test]
    fn regfile_costs_more_than_fifo() {
        // The paper's stated reason MAERI is denser than Eyeriss.
        assert!(regfile_per_byte().area_um2 > 2.5 * fifo_per_byte().area_um2);
    }

    #[test]
    fn multiplier_dominates_adder() {
        assert!(multiplier16().area_um2 > 2.0 * adder16().area_um2);
    }

    #[test]
    fn all_components_positive() {
        for c in [
            sram_per_kb(),
            multiplier16(),
            adder16(),
            fifo_per_byte(),
            regfile_per_byte(),
            ms_control(),
            as_routing(),
            simple_switch(),
            tree_wiring_per_ms(),
            systolic_pe_extras(),
            eyeriss_pe_extras(),
        ] {
            assert!(c.area_um2 > 0.0 && c.power_mw > 0.0);
        }
    }
}
