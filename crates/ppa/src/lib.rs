//! Analytical 28 nm area/power model (Table 3, Figure 11, Figure 16).
//!
//! The paper synthesized MAERI (Bluespec), Eyeriss (authors' RTL) and a
//! systolic array with a TSMC 28 nm library at 200 MHz. This crate
//! substitutes a component-level analytical model whose per-component
//! constants are calibrated so the *aggregate* design points of Table 3
//! come out right:
//!
//! | design | PEs | PB | area |
//! |---|---|---|---|
//! | Eyeriss | 168 | 108 KB | 6.00 mm² |
//! | Systolic (comp match) | 168 | 80 KB | 2.62 mm² |
//! | Systolic (area match) | 1192 | 80 KB | 6.00 mm² |
//! | MAERI (comp match) | 168 | 80 KB | 3.84 mm² |
//! | MAERI (area match) | 374 | 80 KB | 6.00 mm² |
//!
//! and the power relation of Section 5 holds (MAERI ≈ +6.5 % over
//! Eyeriss at the same compute count; the systolic array cheapest).
//! The *reasons* are structural, as in the paper: a MAERI multiplier
//! switch needs only a FIFO (delivery order is guaranteed by the
//! distribution tree), while an Eyeriss PE carries a fully-addressable
//! register file and heavier control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod design_point;
pub mod energy;

pub use design_point::{AcceleratorKind, DesignPoint};
pub use energy::EnergyModel;
