//! The committed suppression file: `analyze-suppressions.txt`.
//!
//! Each suppression is one line, `<rule> <path> <reason...>`, at
//! rule-by-file granularity — the same shape as xtask's unwrap
//! allowlist, and with the same teeth: a suppression that no longer
//! matches any finding is itself an error, so the file can only
//! shrink as hazards are fixed. Parse errors (unknown rule ids,
//! missing reasons) are errors too; a suppression without a written
//! justification is indistinguishable from a rubber stamp.

use crate::rules::{Finding, Rule};
use std::collections::BTreeSet;

/// One parsed suppression line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule this line silences.
    pub rule: Rule,
    /// Repo-relative file the rule is silenced in.
    pub path: String,
    /// Why the finding is acceptable (free text, required).
    pub reason: String,
}

/// Problems with the suppression file itself — these fail the run
/// exactly like findings do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuppressError {
    /// A line that does not parse: `(line_number, explanation)`.
    Malformed(usize, String),
    /// A suppression that matched no finding this run.
    Stale(Suppression),
}

impl std::fmt::Display for SuppressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuppressError::Malformed(line, why) => {
                write!(f, "suppression file line {line}: {why}")
            }
            SuppressError::Stale(s) => write!(
                f,
                "stale suppression: `{} {}` matched no finding — delete the line",
                s.rule.name(),
                s.path
            ),
        }
    }
}

/// Parses the suppression file body. Blank lines and `#` comments are
/// skipped; everything else must be `<rule> <path> <reason...>`.
pub fn parse(body: &str) -> Result<Vec<Suppression>, Vec<SuppressError>> {
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule_word = parts.next().unwrap_or_default();
        let path = parts.next().unwrap_or_default().trim();
        let reason = parts.next().unwrap_or_default().trim();
        let Some(rule) = Rule::from_name(rule_word) else {
            errors.push(SuppressError::Malformed(
                i + 1,
                format!("unknown rule `{rule_word}`"),
            ));
            continue;
        };
        if path.is_empty() {
            errors.push(SuppressError::Malformed(i + 1, "missing path".to_owned()));
            continue;
        }
        if reason.is_empty() {
            errors.push(SuppressError::Malformed(
                i + 1,
                format!("suppression of `{rule_word}` in {path} has no reason"),
            ));
            continue;
        }
        out.push(Suppression {
            rule,
            path: path.to_owned(),
            reason: reason.to_owned(),
        });
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// Splits `findings` into (kept, suppressed) under `suppressions`, and
/// reports every suppression that matched nothing as stale.
pub fn apply(
    findings: Vec<Finding>,
    suppressions: &[Suppression],
) -> (Vec<Finding>, Vec<Finding>, Vec<SuppressError>) {
    let mut kept = Vec::new();
    let mut silenced = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for finding in findings {
        let hit = suppressions
            .iter()
            .position(|s| s.rule == finding.rule && s.path == finding.path);
        match hit {
            Some(i) => {
                used.insert(i);
                silenced.push(finding);
            }
            None => kept.push(finding),
        }
    }
    let stale = suppressions
        .iter()
        .enumerate()
        .filter(|(i, _)| !used.contains(i))
        .map(|(_, s)| SuppressError::Stale(s.clone()))
        .collect();
    (kept, silenced, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line: 1,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn parses_lines_and_skips_comments() {
        let body = "# comment\n\nwall_clock crates/a/src/x.rs timing is telemetry-only here\n";
        let parsed = parse(body).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].rule, Rule::WallClock);
        assert_eq!(parsed[0].path, "crates/a/src/x.rs");
        assert!(parsed[0].reason.contains("telemetry-only"));
    }

    #[test]
    fn unknown_rules_and_missing_reasons_are_errors() {
        let body = "bogus_rule crates/a/src/x.rs why\nwall_clock crates/a/src/x.rs\n";
        let errors = parse(body).unwrap_err();
        assert_eq!(errors.len(), 2);
        assert!(matches!(errors[0], SuppressError::Malformed(1, _)));
        assert!(matches!(errors[1], SuppressError::Malformed(2, _)));
    }

    #[test]
    fn apply_silences_matching_findings() {
        let sup = parse("wall_clock crates/a/src/x.rs reason\n").unwrap();
        let all = vec![
            finding(Rule::WallClock, "crates/a/src/x.rs"),
            finding(Rule::WallClock, "crates/b/src/y.rs"),
        ];
        let (kept, silenced, stale) = apply(all, &sup);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/b/src/y.rs");
        assert_eq!(silenced.len(), 1);
        assert_eq!(stale, []);
    }

    #[test]
    fn unused_suppressions_are_stale() {
        let sup = parse("unseeded_rng crates/a/src/x.rs reason\n").unwrap();
        let (kept, silenced, stale) = apply(Vec::new(), &sup);
        assert_eq!(kept, []);
        assert_eq!(silenced, []);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].to_string().contains("stale suppression"));
        assert!(stale[0].to_string().contains("unseeded_rng"));
    }

    #[test]
    fn suppression_is_rule_specific() {
        let sup = parse("wall_clock crates/a/src/x.rs reason\n").unwrap();
        let all = vec![finding(Rule::UnseededRng, "crates/a/src/x.rs")];
        let (kept, _, stale) = apply(all, &sup);
        assert_eq!(kept.len(), 1, "different rule in same file is not silenced");
        assert_eq!(stale.len(), 1);
    }
}
