//! The determinism rule catalog.
//!
//! Every rule is a pure function over parsed files plus the
//! output-path classification, returning structured [`Finding`]s.
//! Rules scan scrubbed code (comments and strings blanked), so
//! pattern text appearing in docs or messages never fires. The six
//! rules cover the hazards a data-oriented, parallel cycle kernel
//! (ROADMAP item 1) is most likely to introduce:
//!
//! 1. `hash_order` — iteration over `HashMap`/`HashSet` whose order
//!    can reach output without a sort or BTree collection in between.
//! 2. `wall_clock` — `Instant::now`/`SystemTime::now` on the output
//!    path outside the allowlisted watchdog/metrics modules.
//! 3. `unseeded_rng` — entropy-seeded randomness anywhere in shipped
//!    code (`thread_rng`, `from_entropy`, `OsRng`, ...): replay
//!    purity is global, so this rule ignores classification.
//! 4. `float_reduce` — order-sensitive float reductions
//!    (`sum`/`product`/`fold`/`reduce`) over parallel iterators.
//! 5. `thread_influence` — `thread::current()` identity or
//!    `available_parallelism` observable from the output path.
//! 6. `partial_cmp_sort` — comparators built on `partial_cmp` inside
//!    sorts/extrema, where NaN makes the order (and the output)
//!    input-dependent; `total_cmp` is the deterministic spelling.

use crate::ast::FileAst;
use crate::lexer::line_of;
use std::collections::BTreeSet;

/// Stable identifiers for the rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-ordered iteration reaching output.
    HashOrder,
    /// Wall-clock reads on the output path.
    WallClock,
    /// Entropy-seeded randomness in shipped code.
    UnseededRng,
    /// Order-sensitive float reduction over a parallel iterator.
    FloatReduce,
    /// Thread identity / parallelism influencing data.
    ThreadInfluence,
    /// Non-total float comparators in sorts.
    PartialCmpSort,
}

impl Rule {
    /// Every rule, in catalog order.
    pub const ALL: [Rule; 6] = [
        Rule::HashOrder,
        Rule::WallClock,
        Rule::UnseededRng,
        Rule::FloatReduce,
        Rule::ThreadInfluence,
        Rule::PartialCmpSort,
    ];

    /// The rule's stable snake_case id (used in suppression files).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash_order",
            Rule::WallClock => "wall_clock",
            Rule::UnseededRng => "unseeded_rng",
            Rule::FloatReduce => "float_reduce",
            Rule::ThreadInfluence => "thread_influence",
            Rule::PartialCmpSort => "partial_cmp_sort",
        }
    }

    /// Parses a stable id back into a rule.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// How to fix a violation of this rule.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            Rule::HashOrder => {
                "iterate a BTreeMap/BTreeSet, or collect and sort before the order can escape"
            }
            Rule::WallClock => {
                "thread a virtual clock or seeded timestamp through; wall time belongs in \
                 watchdog/metrics modules only"
            }
            Rule::UnseededRng => "use the seeded deterministic RNG (maeri_sim::rng) instead",
            Rule::FloatReduce => {
                "reduce sequentially in a fixed order, or use a fixed-shape tree reduction"
            }
            Rule::ThreadInfluence => {
                "worker counts may size pools, but results must not observe thread identity; \
                 derive data from job content instead"
            }
            Rule::PartialCmpSort => "use f64::total_cmp (or a key cast) for a total order",
        }
    }
}

/// One rule violation: where, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative path.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// What was matched, with context.
    pub message: String,
}

impl Finding {
    fn new(rule: Rule, file: &FileAst, idx: usize, message: String) -> Finding {
        Finding {
            rule,
            path: file.path.clone(),
            line: line_of(&file.code, idx),
            message,
        }
    }
}

/// Modules whose whole purpose is timing/telemetry: wall-clock and
/// thread-identity reads here are the feature, not a hazard, and the
/// trace-neutrality CI diff proves they cannot perturb report bytes.
pub const TIMING_MODULES: &[&str] = &[
    "crates/runtime/src/supervise.rs",
    "crates/runtime/src/metrics.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/recorder.rs",
    "crates/serve/src/registry.rs",
    "compat/criterion/src/lib.rs",
];

/// Runs the whole catalog over `files` with per-fn `output` flags
/// (as produced by [`crate::classify::output_path`]). Findings are
/// sorted by (path, line, rule) for deterministic output.
#[must_use]
pub fn run_all(files: &[FileAst], output: &[Vec<bool>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (file, flags) in files.iter().zip(output) {
        findings.extend(hash_order(file, flags));
        findings.extend(wall_clock(file, flags));
        findings.extend(unseeded_rng(file));
        findings.extend(float_reduce(file, flags));
        findings.extend(thread_influence(file, flags));
        findings.extend(partial_cmp_sort(file, flags));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Whether offset `idx` sits inside an output-path function.
fn in_output(file: &FileAst, flags: &[bool], idx: usize) -> bool {
    file.enclosing_fn(idx).is_some_and(|ni| flags[ni])
}

/// Whether offset `idx` sits inside any function at all (code outside
/// function bodies cannot execute the patterns these rules look for).
fn in_any_fn(file: &FileAst, idx: usize) -> bool {
    file.enclosing_fn(idx).is_some()
}

/// Word-boundary check around `code[at..at + len]`.
fn bounded(code: &str, at: usize, len: usize) -> bool {
    let bytes = code.as_bytes();
    let before = at == 0 || {
        let b = bytes[at - 1];
        !(b.is_ascii_alphanumeric() || b == b'_')
    };
    let after = at + len >= bytes.len() || {
        let b = bytes[at + len];
        !(b.is_ascii_alphanumeric() || b == b'_')
    };
    before && after
}

/// Every word-bounded occurrence of `needle` in `code`.
fn occurrences<'a>(code: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(rel) = code[from..].find(needle) {
            let at = from + rel;
            from = at + needle.len();
            if bounded(code, at, needle.len()) {
                return Some(at);
            }
        }
        None
    })
}

/// End of the statement containing `from`: the first `;` or `{` at
/// paren/bracket depth zero (so closure bodies inside call arguments
/// do not end the statement), capped at 600 bytes.
fn stmt_end(code: &str, from: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let cap = (from + 600).min(bytes.len());
    let mut j = from;
    while j < cap {
        match bytes[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' | b'{' if depth <= 0 => return j,
            _ => {}
        }
        j += 1;
    }
    cap
}

/// Start of the statement containing `at`: just past the previous
/// `;`, `{`, or `}`, capped at 400 bytes back.
fn stmt_start(code: &str, at: usize) -> usize {
    let bytes = code.as_bytes();
    let floor = at.saturating_sub(400);
    let mut j = at;
    while j > floor {
        match bytes[j - 1] {
            b';' | b'{' | b'}' => return j,
            _ => j -= 1,
        }
    }
    floor
}

// ---------------------------------------------------------------- rule 1

/// Iteration entry points whose order is hash-dependent.
const ITER_PATTERNS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Chain members that make hash order unobservable: order-insensitive
/// sinks, or re-collection into an ordered container, or an explicit
/// sort before the order can escape.
const ORDER_SINKS: &[&str] = &[
    ".count()",
    ".len()",
    ".any(",
    ".all(",
    ".contains(",
    ".is_empty()",
    "collect::<BTreeMap",
    "collect::<BTreeSet",
    "collect::<std::collections::BTreeMap",
    "collect::<std::collections::BTreeSet",
    ".sort",
];

/// Rule 1: hash-ordered iteration on the output path.
fn hash_order(file: &FileAst, flags: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let binders = hash_binders(&file.code);
    for name in &binders {
        for at in occurrences(&file.code, name).collect::<Vec<_>>() {
            if !in_output(file, flags, at) {
                continue;
            }
            let window = &file.code[at..stmt_end(&file.code, at)];
            let iterates =
                ITER_PATTERNS.iter().any(|p| window.contains(p)) || in_for_header(&file.code, at);
            if !iterates {
                continue;
            }
            // Sinks may sit on a following statement (the common
            // `let mut v: Vec<_> = m.iter().collect(); v.sort();`
            // idiom), so the sink window runs past the statement, to
            // the end of the function or 400 bytes, whichever first.
            let fn_end = file
                .enclosing_fn(at)
                .map_or(file.code.len(), |ni| file.fns[ni].body.end);
            let sink_window = &file.code[at..(at + 400).min(fn_end)];
            if ORDER_SINKS.iter().any(|s| sink_window.contains(s)) {
                continue;
            }
            findings.push(Finding::new(
                Rule::HashOrder,
                file,
                at,
                format!("hash-ordered iteration over `{name}` can reach report output"),
            ));
        }
    }
    findings
}

/// Whether the occurrence at `at` is the iterated expression of a
/// `for` loop header (`for x in &name {`): its line, up to the
/// occurrence, reads `for` then `in`.
fn in_for_header(code: &str, at: usize) -> bool {
    let line_start = code[..at].rfind('\n').map_or(0, |p| p + 1);
    let head = &code[line_start..at];
    let mut saw_for = false;
    for word in head.split_whitespace() {
        if word == "for" {
            saw_for = true;
        } else if saw_for && word == "in" {
            return true;
        }
    }
    false
}

/// Names bound to `HashMap`/`HashSet` in this file: via type
/// annotations (`name: HashMap<..>`, including through wrapper
/// generics like `Mutex<HashMap<..>>` and path prefixes), or via
/// initializers (`let name = HashMap::new()`, `..collect::<HashMap..`).
fn hash_binders(code: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for at in occurrences(code, ty) {
            if let Some(name) = binder_for(code, at) {
                out.insert(name);
            }
        }
    }
    out
}

/// Resolves the identifier a type occurrence at `idx` is bound to, by
/// walking backwards over path segments, wrapper generics, and
/// annotation/initializer punctuation.
fn binder_for(code: &str, idx: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut j = idx;
    loop {
        // Skip whitespace backwards.
        while j > 0 && bytes[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        match bytes[j - 1] {
            b':' if j >= 2 && bytes[j - 2] == b':' => {
                // Path segment (`std::collections::HashMap`): skip the
                // `::` and the segment before it, keep walking.
                j -= 2;
                j = skip_ident_back(bytes, j)?;
            }
            // Type annotation (`name: HashMap<..>`) or initializer
            // (`let name = HashMap::new()`): the binder sits just
            // before the `:` or `=`.
            b':' | b'=' => return ident_back(code, j - 1),
            b'<' => {
                // Wrapper generic (`Mutex<HashMap<..>>`): resolve the
                // wrapper's own binder.
                j -= 1;
                j = skip_ident_back(bytes, j)?;
            }
            _ => {
                // Fall back to a `let` at the statement head (covers
                // `let name = chain().collect::<HashMap<_, _>>()`
                // scanned from the turbofish occurrence).
                let start = stmt_start(code, idx);
                let stmt = code[start..idx].trim_start();
                let rest = stmt.strip_prefix("let ")?;
                let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
                let name: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                return (!name.is_empty()).then_some(name);
            }
        }
    }
}

/// Moves `j` back over one identifier, returning the new position
/// (`None` when no identifier precedes).
fn skip_ident_back(bytes: &[u8], mut j: usize) -> Option<usize> {
    let end = j;
    while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
        j -= 1;
    }
    (j < end).then_some(j)
}

/// The identifier ending at `end` (exclusive), skipping whitespace.
fn ident_back(code: &str, mut end: usize) -> Option<String> {
    let bytes = code.as_bytes();
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let start = skip_ident_back(bytes, end)?;
    let name = &code[start..end];
    (!name.is_empty() && !name.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| name.to_owned())
}

// ---------------------------------------------------------------- rule 2

/// Rule 2: wall-clock reads on the output path.
fn wall_clock(file: &FileAst, flags: &[bool]) -> Vec<Finding> {
    if TIMING_MODULES.contains(&file.path.as_str()) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for pattern in ["Instant::now", "SystemTime::now"] {
        for at in occurrences(&file.code, pattern) {
            if in_output(file, flags, at) {
                findings.push(Finding::new(
                    Rule::WallClock,
                    file,
                    at,
                    format!("`{pattern}` read on the output path"),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 3

/// Rule 3: entropy-seeded randomness anywhere in shipped code.
fn unseeded_rng(file: &FileAst) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pattern in [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
        "rand::random",
    ] {
        for at in occurrences(&file.code, pattern) {
            if in_any_fn(file, at) {
                findings.push(Finding::new(
                    Rule::UnseededRng,
                    file,
                    at,
                    format!("`{pattern}` draws entropy the replay cannot reproduce"),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 4

const PAR_PATTERNS: &[&str] = &[
    "par_iter(",
    "par_iter_mut(",
    "into_par_iter(",
    "par_bridge(",
    "par_chunks(",
    "par_chunks_mut(",
];

const REDUCE_PATTERNS: &[&str] = &[".sum()", ".sum::<f", ".product()", ".fold(", ".reduce("];

/// Rule 4: order-sensitive reductions over parallel iterators.
fn float_reduce(file: &FileAst, flags: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pattern in PAR_PATTERNS {
        for at in occurrences(&file.code, pattern.trim_end_matches('(')) {
            if !in_output(file, flags, at) {
                continue;
            }
            let window = &file.code[stmt_start(&file.code, at)..stmt_end(&file.code, at)];
            if let Some(reduce) = REDUCE_PATTERNS.iter().find(|r| window.contains(*r)) {
                findings.push(Finding::new(
                    Rule::FloatReduce,
                    file,
                    at,
                    format!(
                        "`{}` chained into `{}`: parallel reduction order is scheduling-dependent",
                        pattern.trim_end_matches('('),
                        reduce.trim_start_matches('.')
                    ),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 5

/// Rule 5: thread identity / parallelism on the output path.
fn thread_influence(file: &FileAst, flags: &[bool]) -> Vec<Finding> {
    if TIMING_MODULES.contains(&file.path.as_str()) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for pattern in ["available_parallelism", "thread::current"] {
        for at in occurrences(&file.code, pattern.trim_start_matches("thread::")) {
            // Match both `thread::current` and `std::thread::current`;
            // plain `current` identifiers without the path are skipped.
            if pattern.starts_with("thread::") && !file.code[..at].ends_with("thread::") {
                continue;
            }
            if in_output(file, flags, at) {
                findings.push(Finding::new(
                    Rule::ThreadInfluence,
                    file,
                    at,
                    format!("`{pattern}` observed on the output path"),
                ));
            }
        }
    }
    findings
}

// ---------------------------------------------------------------- rule 6

const SORT_PATTERNS: &[&str] = &[
    "sort_by(",
    "sort_unstable_by(",
    "max_by(",
    "min_by(",
    "binary_search_by(",
];

/// Rule 6: `partial_cmp` comparators inside sorts/extrema.
fn partial_cmp_sort(file: &FileAst, flags: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for at in occurrences(&file.code, "partial_cmp") {
        if !in_output(file, flags, at) {
            continue;
        }
        let window = &file.code[stmt_start(&file.code, at)..stmt_end(&file.code, at)];
        if let Some(sort) = SORT_PATTERNS.iter().find(|s| window.contains(*s)) {
            findings.push(Finding::new(
                Rule::PartialCmpSort,
                file,
                at,
                format!(
                    "`partial_cmp` comparator inside `{}`: NaN makes the order partial",
                    sort.trim_end_matches('(')
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::output_path;

    /// Parses a single output-path file (seeded via a reports/ path)
    /// and runs the whole catalog over it.
    fn findings_for(source: &str) -> Vec<Finding> {
        let files = vec![FileAst::parse(
            "crates/bench/src/reports/fixture.rs",
            source,
        )];
        let flags = output_path(&files);
        run_all(&files, &flags)
    }

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_order_flags_output_reaching_iteration() {
        let bad = "pub fn run() {\n    let mut m: HashMap<String, u64> = HashMap::new();\n    for (k, v) in &m {\n        emit(k, v);\n    }\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::HashOrder]);
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("`m`"));
    }

    #[test]
    fn hash_order_clean_when_sorted_or_btree() {
        let good = "pub fn run() {\n    let m: HashMap<String, u64> = build();\n    let mut pairs: Vec<_> = m.iter().collect::<Vec<_>>();\n    pairs.sort();\n    let b: BTreeMap<String, u64> = m.clone().into_iter().collect::<BTreeMap<_, _>>();\n    let n = m.keys().count();\n    emit(pairs, b, n);\n}\n";
        assert_eq!(findings_for(good), []);
    }

    #[test]
    fn hash_order_flags_method_chain_through_guards() {
        let bad = "pub fn run(&self) {\n    let rows: Vec<_> = self.cells.lock().unwrap().values().cloned().collect();\n    emit(rows);\n}\nstruct S { cells: Mutex<HashMap<u64, Row>> }\n";
        assert_eq!(rules_of(&findings_for(bad)), [Rule::HashOrder]);
    }

    #[test]
    fn hash_order_ignores_keyed_access_and_test_code() {
        let good = "pub fn run(m: &HashMap<String, u64>) {\n    let v = m.get(\"k\");\n    if m.contains_key(\"k\") { emit(v); }\n}\n#[cfg(test)]\nmod tests {\n    fn t(m: HashMap<u8, u8>) { for x in &m { sink(x); } }\n}\n";
        assert_eq!(findings_for(good), []);
    }

    #[test]
    fn wall_clock_flags_output_path_reads() {
        let bad = "pub fn run() {\n    let t = Instant::now();\n    emit(t);\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::WallClock]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn wall_clock_allows_timing_modules_and_unreached_fns() {
        let timing = vec![FileAst::parse(
            "crates/runtime/src/metrics.rs",
            "pub fn run() { let t = Instant::now(); emit(t); }",
        )];
        let flags = output_path(&timing);
        assert_eq!(run_all(&timing, &flags), []);

        // An unreached fn in a non-seed file never fires the rule.
        let files = vec![FileAst::parse(
            "crates/telemetry/src/span.rs",
            "pub fn stamp() { let t = SystemTime::now(); store(t); }",
        )];
        let flags = output_path(&files);
        assert_eq!(run_all(&files, &flags), []);
    }

    #[test]
    fn unseeded_rng_flags_everywhere_even_off_path() {
        let bad = vec![FileAst::parse(
            "crates/telemetry/src/span.rs",
            "fn jitter() { let r = thread_rng(); use_it(r); }",
        )];
        let flags = output_path(&bad);
        let found = run_all(&bad, &flags);
        assert_eq!(rules_of(&found), [Rule::UnseededRng]);
    }

    #[test]
    fn unseeded_rng_clean_for_seeded_construction() {
        let good = "pub fn run() {\n    let mut rng = SmallRng::seed_from_u64(42);\n    emit(rng.next_u64());\n}\n";
        assert_eq!(findings_for(good), []);
    }

    #[test]
    fn float_reduce_flags_parallel_sum() {
        let bad = "pub fn run(xs: &[f64]) {\n    let total: f64 = xs.par_iter().map(|x| x * x).sum();\n    emit(total);\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::FloatReduce]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn float_reduce_clean_for_sequential_sum_and_par_map() {
        let good = "pub fn run(xs: &[f64]) {\n    let total: f64 = xs.iter().map(|x| x * x).sum();\n    let ys: Vec<f64> = xs.par_iter().map(|x| x + 1.0).collect();\n    emit(total, ys);\n}\n";
        assert_eq!(findings_for(good), []);
    }

    #[test]
    fn thread_influence_flags_output_path_observation() {
        let bad = "pub fn run() {\n    let n = std::thread::available_parallelism().map_or(1, |v| v.get());\n    emit(n);\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::ThreadInfluence]);
    }

    #[test]
    fn thread_influence_clean_off_path_and_for_plain_current() {
        let files = vec![FileAst::parse(
            "crates/runtime/src/pool.rs",
            "fn size_pool() { let n = available_parallelism(); spawn(n); }\npub fn current(x: u8) -> u8 { x }\n",
        )];
        let flags = output_path(&files);
        assert_eq!(run_all(&files, &flags), []);
    }

    #[test]
    fn partial_cmp_sort_flags_non_total_comparator() {
        let bad = "pub fn run(mut xs: Vec<f64>) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    emit(xs);\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::PartialCmpSort]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn partial_cmp_sort_clean_for_total_cmp_and_bare_partial_cmp() {
        let good = "pub fn run(mut xs: Vec<f64>, a: f64, b: f64) {\n    xs.sort_by(|p, q| p.total_cmp(q));\n    let ord = a.partial_cmp(&b);\n    emit(xs, ord);\n}\n";
        assert_eq!(findings_for(good), []);
    }

    #[test]
    fn findings_sort_deterministically() {
        let bad = "pub fn run() {\n    let t = Instant::now();\n    let r = thread_rng();\n    emit(t, r);\n}\n";
        let found = findings_for(bad);
        assert_eq!(rules_of(&found), [Rule::WallClock, Rule::UnseededRng]);
        assert!(found[0].line < found[1].line);
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(!rule.hint().is_empty());
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
