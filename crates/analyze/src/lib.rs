//! Workspace determinism analyzer.
//!
//! `maeri-analyze` is a static-analysis gate over the whole workspace
//! that proves, at the code level, what the regen CI smokes prove at
//! the byte level: nothing nondeterministic can reach the pinned
//! report bytes, the `regen_all` replay, or the serving stack's wire
//! and store output. It exists because ROADMAP item 1 (a rayon-style
//! parallel cycle kernel) will make these hazards easy to introduce
//! and expensive to debug after the fact — a parallel `sum()` that
//! reorders float adds changes report bytes only on some machines.
//!
//! The pipeline, one module per stage:
//!
//! - [`lexer`]: scrub comments/strings so pattern scans only see code;
//! - [`ast`]: `fn`-item extraction and `#[cfg(test)]` blanking;
//! - [`classify`]: reachable-by-name closure from the report registry
//!   and serve serialization seeds → output-path flags per `fn`;
//! - [`rules`]: the six-determinism-rule catalog;
//! - [`suppress`]: the committed suppression file, where stale
//!   entries are themselves errors;
//! - [`workspace`]: file walking and [`workspace::analyze_workspace`],
//!   the entry point `cargo run -p xtask -- analyze` uses.
//!
//! The analyzer is dependency-free by construction (no `syn`): like
//! the `compat/` stand-ins, it must build in the sealed offline
//! environment, so it carries its own scrubbing lexer and item parser
//! sized to exactly what the rules need.

#![forbid(unsafe_code)]

pub mod ast;
pub mod classify;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod workspace;

pub use ast::{FileAst, FnItem};
pub use rules::{Finding, Rule};
pub use suppress::{SuppressError, Suppression};
pub use workspace::{analyze_workspace, SUPPRESSION_FILE};

/// Corpus counters for one analysis run, surfaced in
/// `regen_all --json` and the xtask summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Files parsed.
    pub files: usize,
    /// `fn` items found outside test regions.
    pub functions: usize,
    /// Functions classified output-path.
    pub output_functions: usize,
    /// Suppression lines that silenced at least one finding.
    pub suppressions_in_use: usize,
}

/// The result of one workspace analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Corpus counters.
    pub stats: Stats,
    /// Findings not covered by a suppression — any entry fails the
    /// gate.
    pub findings: Vec<Finding>,
    /// Findings silenced by the suppression file (reported, not
    /// fatal).
    pub suppressed: Vec<Finding>,
    /// Suppression-file problems (parse errors, stale lines) — any
    /// entry fails the gate.
    pub suppress_errors: Vec<SuppressError>,
}

impl Analysis {
    /// Whether the gate passes: no live findings and a clean
    /// suppression file.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.suppress_errors.is_empty()
    }

    /// Findings per rule, in catalog order, including suppressed ones
    /// (the count describes the codebase, not the gate status).
    #[must_use]
    pub fn per_rule(&self) -> [(Rule, usize); 6] {
        Rule::ALL.map(|rule| {
            let n = self
                .findings
                .iter()
                .chain(&self.suppressed)
                .filter(|f| f.rule == rule)
                .count();
            (rule, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_requires_no_findings_and_no_suppress_errors() {
        let mut a = Analysis::default();
        assert!(a.clean());
        a.suppress_errors
            .push(SuppressError::Malformed(1, "x".to_owned()));
        assert!(!a.clean());
    }

    #[test]
    fn per_rule_counts_suppressed_findings_too() {
        let mut a = Analysis::default();
        a.findings.push(Finding {
            rule: Rule::WallClock,
            path: "a.rs".to_owned(),
            line: 1,
            message: "m".to_owned(),
        });
        a.suppressed.push(Finding {
            rule: Rule::WallClock,
            path: "b.rs".to_owned(),
            line: 2,
            message: "m".to_owned(),
        });
        let counts = a.per_rule();
        assert_eq!(counts[1], (Rule::WallClock, 2));
        assert_eq!(counts[0].1 + counts[2].1, 0);
    }
}
