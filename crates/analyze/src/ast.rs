//! A lightweight item-level AST over scrubbed source.
//!
//! The analyzer does not need expression trees — its rules are
//! pattern-driven — but it does need three structural facts a plain
//! line scan cannot provide: where each `fn` item's body starts and
//! ends (to attribute findings to functions and walk call edges),
//! which regions are `#[cfg(test)]`-gated (rules never fire there),
//! and accurate line numbers. [`FileAst::parse`] provides all three
//! by brace matching over [`crate::lexer::scrub`]bed text, where
//! braces inside strings and comments no longer exist.

use crate::lexer::{line_of, scrub};
use std::ops::Range;

/// One `fn` item: its name, the 1-based line of its `fn` keyword, and
/// the byte range of its body (between, not including, its braces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's identifier.
    pub name: String,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body in the scrubbed text.
    pub body: Range<usize>,
}

/// One parsed source file: scrubbed text with test regions blanked,
/// plus its `fn` items in source order.
#[derive(Debug, Clone)]
pub struct FileAst {
    /// Repo-relative, slash-separated path.
    pub path: String,
    /// Scrubbed source with `#[cfg(test)]` regions blanked: every rule
    /// scan and call-edge walk runs over this text.
    pub code: String,
    /// Every `fn` item outside test regions, in source order.
    pub fns: Vec<FnItem>,
}

impl FileAst {
    /// Parses one file: scrub, blank test regions, extract `fn` items.
    #[must_use]
    pub fn parse(path: &str, source: &str) -> FileAst {
        let mut code = scrub(source);
        blank_test_regions(&mut code);
        let fns = find_fns(&code);
        FileAst {
            path: path.to_owned(),
            code,
            fns,
        }
    }

    /// The innermost `fn` containing byte offset `idx`, if any
    /// (nested `fn` items resolve to the deepest one).
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.contains(&idx))
            .max_by_key(|(_, f)| f.body.start)
            .map(|(i, _)| i)
    }
}

/// Blanks every `#[cfg(test)]`-gated item (the attribute through the
/// item's closing brace, or its `;` for brace-less items), so no rule
/// and no call edge ever sees test code.
fn blank_test_regions(code: &mut String) {
    const MARKER: &str = "#[cfg(test)]";
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(MARKER) {
        let start = from + rel;
        let after = start + MARKER.len();
        let end = match item_end(code, after) {
            Some(end) => end,
            None => code.len(),
        };
        // SAFETY of the replace: both texts are pure ASCII in the
        // replaced span (scrubbed structural characters).
        let blanked: String = code[start..end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        code.replace_range(start..end, &blanked);
        from = end;
    }
}

/// End (exclusive) of the item starting after an attribute at `from`:
/// the matching close of its first `{`, or just past its first `;` if
/// that comes sooner.
fn item_end(code: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut j = from;
    while j < bytes.len() {
        match bytes[j] {
            b';' => return Some(j + 1),
            b'{' => return matching_brace(code, j).map(|close| close + 1),
            _ => j += 1,
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether the byte before `idx` could continue an identifier (used to
/// require word boundaries around keywords).
fn boundary_before(code: &str, idx: usize) -> bool {
    idx == 0 || {
        let b = code.as_bytes()[idx - 1];
        !(b.is_ascii_alphanumeric() || b == b'_')
    }
}

/// Every `fn NAME` item with a body, in source order. Trait-method
/// declarations (`fn f();`) are skipped.
fn find_fns(code: &str) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("fn ") {
        let at = from + rel;
        from = at + 3;
        if !boundary_before(code, at) {
            continue;
        }
        let name: String = code[at + 3..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue; // `fn` in an `Fn(..)` bound or similar
        }
        let sig_end = at + 3 + name.len();
        // The body opens at the first `{` before any `;` (a `;` first
        // means a bodyless declaration). `where` clauses and return
        // types contain no braces in this codebase's style.
        let Some(end) = item_end(code, sig_end) else {
            continue;
        };
        if code.as_bytes()[end - 1] == b';' {
            continue;
        }
        let Some(open) = code[sig_end..end].find('{').map(|p| sig_end + p) else {
            continue;
        };
        fns.push(FnItem {
            name,
            line: line_of(code, at),
            body: open + 1..end - 1,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_items_have_names_lines_and_bodies() {
        let src = "pub fn alpha() -> u8 {\n    1\n}\n\nfn beta(x: u8) {\n    let y = x;\n}\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].name, "alpha");
        assert_eq!(ast.fns[0].line, 1);
        assert_eq!(ast.fns[1].name, "beta");
        assert_eq!(ast.fns[1].line, 5);
        assert!(ast.code[ast.fns[1].body.clone()].contains("let y = x;"));
    }

    #[test]
    fn cfg_test_regions_are_blanked() {
        let src = "pub fn live() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { thread_rng(); }\n}\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "live");
        assert!(!ast.code.contains("thread_rng"));
    }

    #[test]
    fn cfg_test_on_single_fn_is_blanked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nfn helper() { Instant::now(); }\nfn also_live() {}\n";
        let ast = FileAst::parse("a.rs", src);
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live", "also_live"]);
        assert!(!ast.code.contains("Instant::now"));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src =
            "trait T {\n    fn required(&self);\n    fn provided(&self) { self.required() }\n}\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "provided");
    }

    #[test]
    fn nested_fns_resolve_to_the_innermost() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 2);
        let leaf_at = ast.code.find("leaf").unwrap();
        let idx = ast.enclosing_fn(leaf_at).unwrap();
        assert_eq!(ast.fns[idx].name, "inner");
    }

    #[test]
    fn braces_in_strings_do_not_break_matching() {
        let src = "fn f() { let s = \"{ not a brace }\"; tail(); }\nfn g() {}\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.code[ast.fns[0].body.clone()].contains("tail();"));
    }

    #[test]
    fn fn_keyword_inside_identifiers_is_ignored() {
        let src = "fn real() { spawn_fn (); }\nstruct DynFn { f: u8 }\n";
        let ast = FileAst::parse("a.rs", src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "real");
    }
}
