//! Workspace traversal and the end-to-end analysis entry point.
//!
//! [`analyze_workspace`] is what `cargo run -p xtask -- analyze`
//! calls: collect every non-test `.rs` file under `crates/` and
//! `compat/`, parse, classify, run the rule catalog, then apply the
//! committed suppression file. Tests under `tests/` directories are
//! excluded wholesale (the determinism contract binds shipped code;
//! `#[cfg(test)]` blanking already covers inline tests), as are
//! `target/` build outputs.

use crate::ast::FileAst;
use crate::classify::output_path;
use crate::rules::run_all;
use crate::suppress::{self, SuppressError, Suppression};
use crate::{Analysis, Stats};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The committed suppression file, relative to the workspace root.
pub const SUPPRESSION_FILE: &str = "analyze-suppressions.txt";

/// Source trees the analyzer walks, relative to the workspace root.
const SOURCE_ROOTS: &[&str] = &["crates", "compat"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "tests", "benches"];

/// Collects every analyzable `.rs` path under the workspace root, in
/// sorted (deterministic) order, as repo-relative slash paths.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for tree in SOURCE_ROOTS {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative, slash-separated rendering of `path` under `root`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Reads the suppression file at the workspace root; a missing file
/// means no suppressions.
pub fn load_suppressions(root: &Path) -> Result<Vec<Suppression>, Vec<SuppressError>> {
    match fs::read_to_string(root.join(SUPPRESSION_FILE)) {
        Ok(body) => suppress::parse(&body),
        Err(_) => Ok(Vec::new()),
    }
}

/// Runs the full pipeline over the workspace at `root`.
///
/// # Errors
///
/// Returns `Err` only for I/O failures walking or reading sources;
/// rule findings and suppression problems are reported inside the
/// [`Analysis`], not as errors.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let paths = workspace_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = fs::read_to_string(path)?;
        files.push(FileAst::parse(&relative(root, path), &source));
    }
    let (suppressions, mut file_errors) = match load_suppressions(root) {
        Ok(s) => (s, Vec::new()),
        Err(e) => (Vec::new(), e),
    };
    let flags = output_path(&files);
    let findings = run_all(&files, &flags);
    let (kept, silenced, stale) = suppress::apply(findings, &suppressions);
    file_errors.extend(stale);

    let output_fns = flags.iter().map(|f| f.iter().filter(|&&b| b).count()).sum();
    let total_fns = files.iter().map(|f| f.fns.len()).sum();
    let lines_in_use = silenced
        .iter()
        .map(|f| (f.rule, f.path.as_str()))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    Ok(Analysis {
        stats: Stats {
            files: files.len(),
            functions: total_fns,
            output_functions: output_fns,
            suppressions_in_use: lines_in_use,
        },
        findings: kept,
        suppressed: silenced,
        suppress_errors: file_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analyzer crate's own sources are reachable from any test
    /// run, so the walker and relative-path logic can be exercised
    /// against the real workspace root.
    fn repo_root() -> PathBuf {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .ancestors()
            .nth(2)
            .expect("crates/analyze has a workspace root two levels up")
            .to_path_buf()
    }

    #[test]
    fn walker_finds_this_file_and_skips_tests_dirs() {
        let root = repo_root();
        let files = workspace_files(&root).unwrap();
        let rels: Vec<String> = files.iter().map(|p| relative(&root, p)).collect();
        assert!(rels.iter().any(|p| p == "crates/analyze/src/workspace.rs"));
        assert!(rels.iter().all(|p| !p.contains("/tests/")));
        assert!(rels.iter().all(|p| !p.contains("/target/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk order is deterministic");
    }

    #[test]
    fn relative_paths_are_slash_separated() {
        let root = Path::new("/ws");
        let path = Path::new("/ws/crates/a/src/lib.rs");
        assert_eq!(relative(root, path), "crates/a/src/lib.rs");
    }
}
