//! Output-path classification: which functions can reach report bytes.
//!
//! The determinism contract protects *output*: the 18 pinned reports,
//! `regen_all`, and the serving stack's replies and persisted results.
//! Test code and telemetry-gated code may read clocks and thread ids
//! freely. The classifier separates the two with a reachable-by-name
//! closure, the same static style `maeri-verify` uses for mapping
//! legality: no execution, conservative over-approximation.
//!
//! Seeds are every function defined in the report registry modules
//! (`crates/bench/src/reports/`), the report binaries
//! (`crates/bench/src/bin/`, which includes `regen_all`), and the
//! serve reply/store serialization surface (`wire.rs`, `server.rs`,
//! `store.rs`). From the seeds, any function whose *name* is called
//! in a reachable body becomes reachable. Name collisions mark more
//! code output-path, never less — over-approximation is the sound
//! direction for a lint.

use crate::ast::FileAst;
use std::collections::{BTreeMap, BTreeSet};

/// Path prefixes/files whose every `fn` seeds the closure.
const SEED_PREFIXES: &[&str] = &["crates/bench/src/reports/", "crates/bench/src/bin/"];
const SEED_FILES: &[&str] = &[
    "crates/serve/src/wire.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/store.rs",
];

/// Rust keywords that can precede `(` without naming a function.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "else", "enum", "extern", "false", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while",
];

/// Per-file, per-`fn` output-path flags, aligned with `files[i].fns`.
#[must_use]
pub fn output_path(files: &[FileAst]) -> Vec<Vec<bool>> {
    // Name index: every definition site of each fn name.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, item) in file.fns.iter().enumerate() {
            by_name.entry(&item.name).or_default().push((fi, ni));
        }
    }

    let mut marked: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.fns.len()]).collect();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if is_seed(&file.path) {
            for (ni, slot) in marked[fi].iter_mut().enumerate() {
                *slot = true;
                work.push((fi, ni));
            }
        }
    }

    while let Some((fi, ni)) = work.pop() {
        let file = &files[fi];
        let body = &file.code[file.fns[ni].body.clone()];
        for name in called_names(body) {
            if let Some(sites) = by_name.get(name.as_str()) {
                for &(cf, cn) in sites {
                    if !marked[cf][cn] {
                        marked[cf][cn] = true;
                        work.push((cf, cn));
                    }
                }
            }
        }
    }
    marked
}

/// Whether every `fn` in this file seeds the closure.
fn is_seed(path: &str) -> bool {
    SEED_PREFIXES.iter().any(|p| path.starts_with(p)) || SEED_FILES.contains(&path)
}

/// The identifiers a body invokes: `name(`, `.name(`, `path::name(`,
/// and turbofish `name::<T>(`. Macros (`name!(`) and keywords are
/// excluded. Deduplicated and sorted for deterministic traversal.
fn called_names(body: &str) -> BTreeSet<String> {
    let bytes = body.as_bytes();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let name = &body[start..i];
            let rest = &bytes[i..];
            // `name(` and turbofish `name::<` are calls; `name!(` is a
            // macro and everything else is a plain identifier.
            let is_call = match rest.first() {
                Some(b'(') => true,
                Some(b':') => rest.starts_with(b"::<"),
                Some(_) | None => false,
            };
            if is_call && !KEYWORDS.contains(&name) {
                out.insert(name.to_owned());
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(pairs: &[(&str, &str)]) -> Vec<FileAst> {
        pairs.iter().map(|(p, s)| FileAst::parse(p, s)).collect()
    }

    #[test]
    fn seeds_reach_through_call_chains() {
        let files = parse(&[
            (
                "crates/bench/src/reports/table1.rs",
                "pub fn run() { helper(); }",
            ),
            (
                "crates/maeri/src/sim.rs",
                "pub fn helper() { leaf(); }\npub fn leaf() {}\npub fn unreached() {}",
            ),
        ]);
        let marked = output_path(&files);
        assert_eq!(marked[0], [true]);
        assert_eq!(
            marked[1],
            [true, true, false],
            "helper and leaf, not unreached"
        );
    }

    #[test]
    fn method_calls_and_turbofish_count_as_edges() {
        let files = parse(&[
            (
                "crates/bench/src/bin/regen_all.rs",
                "fn main() { rt.run_phase::<u8>(x); obj.render(); }",
            ),
            (
                "crates/runtime/src/runtime.rs",
                "pub fn run_phase() {}\npub fn render() {}",
            ),
        ]);
        let marked = output_path(&files);
        assert_eq!(marked[1], [true, true]);
    }

    #[test]
    fn macros_and_keywords_are_not_edges() {
        let files = parse(&[
            (
                "crates/bench/src/reports/t.rs",
                "pub fn run() { println!(\"x\"); if (a) {} }",
            ),
            ("crates/x/src/lib.rs", "pub fn println() {}"),
        ]);
        let marked = output_path(&files);
        assert_eq!(marked[1], [false]);
    }

    #[test]
    fn non_seed_files_start_unmarked() {
        let files = parse(&[(
            "crates/telemetry/src/span.rs",
            "pub fn chrome_trace() { emit(); }",
        )]);
        assert_eq!(output_path(&files)[0], [false]);
    }

    #[test]
    fn serve_serialization_surface_is_seeded() {
        let files = parse(&[("crates/serve/src/wire.rs", "pub fn encode() { to_json(); }")]);
        assert_eq!(output_path(&files)[0], [true]);
    }
}
