//! Source scrubbing: the lexical front end of the analyzer.
//!
//! [`scrub`] replaces every comment, string literal, and char literal
//! in a Rust source file with spaces, preserving byte length and
//! newlines exactly. Rules then scan the scrubbed text with plain
//! substring matching, knowing that a match is *code* — a doc comment
//! mentioning `Instant::now` or a lint message quoting `.unwrap()`
//! can never trip a rule. Line numbers computed on the scrubbed text
//! are valid for the original.
//!
//! The scrubber is a small state machine, not a full lexer: it only
//! has to recognize the token classes whose *contents* must not be
//! scanned. It handles line comments, nested block comments, plain and
//! raw strings (any `#` count, `b`/`r`/`br` prefixes), char and
//! byte-char literals, and distinguishes lifetimes (`'a`) from char
//! literals (`'a'`).

/// Replaces comments and literal contents (delimiters included) with
/// spaces. The output has the same byte length and the same newline
/// positions as the input.
#[must_use]
pub fn scrub(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let mut i = 0usize;

    // Blanks out[from..to], keeping newlines so line numbers survive.
    let blank = |out: &mut Vec<u8>, from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = memchr(bytes, i, b'\n').unwrap_or(bytes.len());
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j.min(bytes.len()));
                i = j;
            }
            b'"' => {
                // A plain (or byte) string: the prefix byte, if any,
                // was already emitted as code, which is harmless.
                let end = string_end(bytes, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (hashes, quote) = raw_prefix(bytes, i);
                let end = raw_string_end(bytes, quote + 1, hashes);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' if !prev_is_ident(bytes, i) || prev_is_byte_prefix(bytes, i) => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1; // a lifetime: leave it in place
                }
            }
            _ => i += 1,
        }
    }
    // Scrubbing only ever replaces whole code points with ASCII
    // spaces, so the bytes stay valid UTF-8; the lossy path exists to
    // keep this total rather than panicking on a broken invariant.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// First index >= `from` holding `needle`.
fn memchr(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| from + p)
}

/// End index (exclusive, past the closing quote) of a plain string
/// whose contents start at `from`, honoring `\` escapes.
fn string_end(bytes: &[u8], from: usize) -> usize {
    let mut j = from;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Whether the bytes at `i` begin a raw or byte string literal
/// (`r"`, `r#"`, `br"`, `b"`, ... with any `#` count), and `i` is not
/// the tail of a longer identifier (`var"` cannot occur in valid
/// Rust, but `for r in ...` must not be misread).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if prev_is_ident(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    j > i && bytes.get(j) == Some(&b'"')
}

/// For a raw/byte string starting at `i`, the `#` count and the index
/// of the opening quote.
fn raw_prefix(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// End index (exclusive) of a raw string whose contents start at
/// `from`, closed by a quote followed by `hashes` `#`s.
fn raw_string_end(bytes: &[u8], from: usize, hashes: usize) -> usize {
    let mut j = from;
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    bytes.len()
}

/// Whether the byte before `i` continues an identifier.
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Whether `i` points at the quote of a byte-char literal `b'x'`.
fn prev_is_byte_prefix(bytes: &[u8], i: usize) -> bool {
    i > 0 && bytes[i - 1] == b'b' && !prev_is_ident(bytes, i - 1)
}

/// If a char literal starts at the quote at `i`, its end index
/// (exclusive); `None` when the quote introduces a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: consume to the next unescaped quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(bytes.len())
        }
        Some(_) => {
            // `'x'` is a char literal; `'a>` or `'a,` is a lifetime.
            // An unescaped char literal is exactly one code point, so
            // the closing quote must sit immediately after it — that
            // is what separates `'y'` from the lifetime in `<'a>`.
            let width = match std::str::from_utf8(&bytes[i + 1..]) {
                Ok(rest) => rest.chars().next().map_or(1, char::len_utf8),
                Err(_) => 1,
            };
            let close = i + 1 + width;
            if bytes.get(close) == Some(&b'\'') {
                Some(close + 1)
            } else {
                None
            }
        }
        None => None,
    }
}

/// 1-based line number of byte offset `idx` in `text`.
#[must_use]
pub fn line_of(text: &str, idx: usize) -> usize {
    // A plain byte scan; the `bytecount` crate clippy suggests is not
    // available in the sealed build environment.
    #[allow(clippy::naive_bytecount)]
    let newlines = text.as_bytes()[..idx.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count();
    newlines + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_lines_survive() {
        let src =
            "let a = 1; // thread_rng() here\n/* Instant::now()\n spans lines */ let b = 2;\n";
        let out = scrub(src);
        assert_eq!(out.len(), src.len());
        assert!(!out.contains("thread_rng"));
        assert!(!out.contains("Instant::now"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 3;";
        let out = scrub(src);
        assert!(!out.contains("outer"));
        assert!(!out.contains("still"));
        assert!(out.contains("let x = 3;"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let src = r#"let msg = "call .unwrap() and Instant::now"; f(msg);"#;
        let out = scrub(src);
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("Instant"));
        assert!(out.contains("let msg ="));
        assert!(out.contains("f(msg);"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "he said \"Instant::now\" loudly"; g();"#;
        let out = scrub(src);
        assert!(!out.contains("Instant"));
        assert!(out.contains("g();"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = r##"let s = r#"raw "quoted" thread_rng"#; h();"##;
        let out = scrub(src);
        assert!(!out.contains("thread_rng"));
        assert!(out.contains("h();"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_blanked() {
        let src = r#"let b = b"SystemTime::now"; let c = b'x'; k();"#;
        let out = scrub(src);
        assert!(!out.contains("SystemTime"));
        assert!(!out.contains("b'x'"));
        assert!(out.contains("k();"));
    }

    #[test]
    fn lifetimes_survive_but_char_literals_are_blanked() {
        let src = "fn f<'a>(x: &'a str) -> char { 'y' }";
        let out = scrub(src);
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains("'y'"));
    }

    #[test]
    fn escaped_char_literals_are_blanked() {
        let src = r"let nl = '\n'; let q = '\''; m();";
        let out = scrub(src);
        assert!(!out.contains("\\n"));
        assert!(out.contains("m();"));
    }

    #[test]
    fn line_of_counts_from_one() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
