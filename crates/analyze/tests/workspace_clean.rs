//! The analyzer's strongest test: run it over the real workspace.
//!
//! This is the same invocation `cargo run -p xtask -- analyze` makes,
//! asserted from a test so `cargo test -q` alone proves the gate
//! would pass. It pins three facts: the workspace has zero findings
//! outside the committed suppressions, the suppression file itself is
//! well-formed with no stale lines, and the classifier actually marks
//! a meaningful output-path core (a regression that stopped marking
//! anything would make every rule vacuously pass).

use maeri_analyze::{analyze_workspace, Rule, SuppressError};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_committed_suppressions() {
    let analysis = analyze_workspace(&repo_root()).expect("workspace walk succeeds");
    for f in &analysis.findings {
        eprintln!(
            "unsuppressed: {}:{} [{}] {}",
            f.path,
            f.line,
            f.rule.name(),
            f.message
        );
    }
    for e in &analysis.suppress_errors {
        eprintln!("suppression problem: {e}");
    }
    assert!(
        analysis.clean(),
        "workspace must analyze clean: {} finding(s), {} suppression error(s)",
        analysis.findings.len(),
        analysis.suppress_errors.len()
    );
}

#[test]
fn classifier_marks_a_meaningful_output_core() {
    let analysis = analyze_workspace(&repo_root()).expect("workspace walk succeeds");
    let s = analysis.stats;
    assert!(s.files > 100, "workspace has {} files", s.files);
    assert!(s.functions > 500, "workspace has {} fns", s.functions);
    assert!(
        s.output_functions * 10 >= s.functions * 3,
        "output-path core collapsed: {} of {} fns marked",
        s.output_functions,
        s.functions
    );
    assert!(
        s.output_functions < s.functions,
        "classification must not mark everything"
    );
}

#[test]
fn known_telemetry_hazards_stay_suppressed_not_fixed_silently() {
    // The suppression file documents real wall-clock reads (report
    // phase stamps, the live service clock). If those disappear the
    // stale-suppression check fires — this test just pins that the
    // current set is the one DESIGN.md section 16 describes.
    let analysis = analyze_workspace(&repo_root()).expect("workspace walk succeeds");
    let wall = analysis
        .suppressed
        .iter()
        .filter(|f| f.rule == Rule::WallClock)
        .count();
    assert!(
        wall >= 5,
        "expected the documented wall-clock telemetry set, got {wall}"
    );
    assert!(
        analysis
            .suppressed
            .iter()
            .all(|f| f.rule == Rule::WallClock || f.rule == Rule::ThreadInfluence),
        "only the two telemetry rules may carry suppressions today"
    );
}

#[test]
fn stale_suppressions_are_detected_against_the_real_corpus() {
    // Drive apply() with the real findings plus one extra line that
    // matches nothing: it must surface as stale.
    let root = repo_root();
    let body = std::fs::read_to_string(root.join(maeri_analyze::SUPPRESSION_FILE))
        .expect("committed suppression file exists");
    let with_extra = format!("{body}\nunseeded_rng crates/sim/src/lib.rs bogus reason\n");
    let sups = maeri_analyze::suppress::parse(&with_extra).expect("file parses");

    let paths = maeri_analyze::workspace::workspace_files(&root).expect("walk");
    let files: Vec<maeri_analyze::FileAst> = paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            maeri_analyze::FileAst::parse(&rel, &std::fs::read_to_string(p).expect("read"))
        })
        .collect();
    let flags = maeri_analyze::classify::output_path(&files);
    let findings = maeri_analyze::rules::run_all(&files, &flags);
    let (_, _, stale) = maeri_analyze::suppress::apply(findings, &sups);
    assert!(
        stale
            .iter()
            .any(|e| matches!(e, SuppressError::Stale(s) if s.path == "crates/sim/src/lib.rs")),
        "the planted no-match suppression must be reported stale"
    );
}
