//! End-to-end assertions of the paper's headline claims, regenerated
//! through the same experiment functions the figure binaries use.
//!
//! These tests pin the *shape* of every evaluation artifact — who wins,
//! by roughly what factor, where crossovers fall — as required for a
//! faithful reproduction. Exact absolute numbers are recorded in
//! `EXPERIMENTS.md`.

use maeri_bench::experiments;

#[test]
fn table3_matches_paper_design_points() {
    let points = experiments::table3();
    let areas_mm2: Vec<f64> = points.iter().map(|p| p.area_um2() / 1e6).collect();
    let expected = [6.00, 2.62, 6.00, 3.84, 6.00];
    for (measured, paper) in areas_mm2.iter().zip(expected) {
        assert!(
            (measured - paper).abs() < 0.05,
            "area {measured} vs paper {paper}"
        );
    }
    assert!((points[2].num_pes as i64 - 1192).abs() <= 15);
    assert!((points[4].num_pes as i64 - 374).abs() <= 5);
}

#[test]
fn figure12_maeri_fastest_on_modern_layers() {
    let rows = experiments::figure12();
    // MAERI wins at least 8 of the 10 layers against both baselines.
    let wins = rows
        .iter()
        .filter(|r| {
            r.maeri.cycles <= r.systolic.cycles && r.maeri.cycles <= r.row_stationary.cycles
        })
        .count();
    assert!(wins >= 8, "MAERI won only {wins}/10 layers");
    // ~95% utilization on 3x3-dominated layers.
    for row in rows.iter().filter(|r| r.layer.starts_with("vgg")) {
        assert!(
            row.maeri.utilization() > 0.9,
            "{} util {}",
            row.layer,
            row.maeri.utilization()
        );
    }
    let mean = experiments::figure12_mean_speedup(&rows);
    assert!(mean > 1.4, "mean speedup {mean}");
}

#[test]
fn figure13_sparsity_story_holds() {
    let rows = experiments::figure13();
    // The baseline is flat (rigid clusters cannot exploit sparsity).
    let first = rows.first().unwrap().cluster.cycles.as_f64();
    let last = rows.last().unwrap().cluster.cycles.as_f64();
    assert!(
        (first - last).abs() / first < 0.05,
        "baseline should stay flat: {first} -> {last}"
    );
    // MAERI's latency falls monotonically (within noise) and the
    // speedup at 50% sparsity exceeds 3x.
    let maeri_first = rows.first().unwrap().maeri_1x.cycles.as_f64();
    let maeri_last = rows.last().unwrap().maeri_1x.cycles.as_f64();
    assert!(maeri_last < 0.6 * maeri_first);
    let speedup = last / maeri_last;
    assert!(speedup > 3.0, "50% sparse speedup {speedup}");
    // Paper: 73.8% utilization at 50% sparsity.
    let util = rows.last().unwrap().maeri_1x.utilization();
    assert!((util - 0.738).abs() < 0.08, "util {util}");
}

#[test]
fn figure14_fused_speedups_within_band() {
    let rows = experiments::figure14();
    assert_eq!(rows.len(), 5);
    for row in &rows {
        let s = row.speedup();
        assert!(
            (1.0..=2.6).contains(&s),
            "{}: speedup {s} out of band",
            row.name
        );
        // MAERI always uses its switches at least as well.
        assert!(
            row.maeri.utilization() + 0.02 >= row.cluster.utilization(),
            "{}: utilization regressed",
            row.name
        );
    }
    let max = rows
        .iter()
        .map(experiments::Fig14Row::speedup)
        .fold(f64::MIN, f64::max);
    assert!(max >= 1.5, "max fused speedup {max}");
}

#[test]
fn figure17_walkthrough_numbers() {
    let report = experiments::figure17();
    assert_eq!(report.systolic.cycles, 156);
    assert_eq!(report.systolic.sram_reads, 1323);
    assert_eq!(report.maeri_paper_stated.cycles, 143);
    assert_eq!(report.maeri_paper_stated.sram_reads, 516);
    assert_eq!(report.maeri.cycles, 140);
    assert_eq!(report.maeri.sram_reads, 516);
    assert!(report.vgg16_read_ratio_256 > 1.5);
}

#[test]
fn headline_utilization_range() {
    let improvements = experiments::headline_improvements();
    let max = improvements
        .iter()
        .map(|(_, _, _, pct)| *pct)
        .fold(f64::MIN, f64::max);
    // Paper: up to 459% better utilization; we demand >150% somewhere.
    assert!(max > 150.0, "max improvement {max}%");
    // The typical modern-layer improvement clears the paper's 8% floor.
    let above_floor = improvements
        .iter()
        .filter(|(_, _, _, pct)| *pct >= 8.0)
        .count();
    assert!(
        above_floor * 10 >= improvements.len() * 8,
        "only {above_floor}/{} comparisons clear the 8% floor",
        improvements.len()
    );
}
