//! Cross-validation: the clocked trace simulator and the analytic
//! steady-state model must agree on throughput across the resource
//! regimes (compute-bound, distribution-bound, collection-bound).

use maeri_repro::fabric::cycle_sim::{simulate_conv_iteration, LaneSpec};
use maeri_repro::fabric::MaeriConfig;

/// Analytic steady-state cycles per step, mirroring the CONV mapper:
/// max(1, unique-inputs / dist_bw, lanes / collect_bw).
fn analytic_per_step(cfg: &MaeriConfig, lanes: &[LaneSpec], shared: usize) -> f64 {
    let shared = shared.min(
        lanes
            .iter()
            .map(|l| l.fresh_inputs_per_step)
            .min()
            .unwrap_or(0),
    );
    let private: u64 = lanes
        .iter()
        .map(|l| (l.fresh_inputs_per_step - shared) as u64)
        .sum();
    let words = shared as u64 + private;
    let by_dist = words as f64 / cfg.dist_bandwidth() as f64;
    let by_collect = lanes.len() as f64 / cfg.collect_bandwidth() as f64;
    by_dist.max(by_collect).max(1.0)
}

fn check_agreement(cfg: &MaeriConfig, lanes: &[LaneSpec], shared: usize, label: &str) {
    let steps = 400u64;
    let trace = simulate_conv_iteration(cfg, lanes, steps, shared).expect("simulable");
    let traced = trace.cycles.as_u64() as f64 / steps as f64;
    let analytic = analytic_per_step(cfg, lanes, shared);
    let ratio = traced / analytic;
    assert!(
        (0.9..=1.3).contains(&ratio),
        "{label}: traced {traced:.3} vs analytic {analytic:.3} cycles/step (ratio {ratio:.3})"
    );
}

#[test]
fn compute_bound_regime_agrees() {
    let cfg = MaeriConfig::paper_64();
    let lanes = vec![
        LaneSpec {
            vn_size: 9,
            fresh_inputs_per_step: 3
        };
        7
    ];
    check_agreement(&cfg, &lanes, 3, "7 VNs of 9, shared window");
}

#[test]
fn distribution_bound_regime_agrees() {
    let cfg = MaeriConfig::paper_64();
    for inputs in [16usize, 24, 44] {
        let lanes = vec![LaneSpec {
            vn_size: 61,
            fresh_inputs_per_step: inputs,
        }];
        check_agreement(&cfg, &lanes, 0, &format!("1 VN, {inputs} words/step"));
    }
}

#[test]
fn collection_bound_regime_agrees() {
    let cfg = MaeriConfig::builder(64)
        .distribution_bandwidth(64)
        .collection_bandwidth(2)
        .build()
        .unwrap();
    for count in [8usize, 16, 32] {
        let lanes = vec![
            LaneSpec {
                vn_size: 2,
                fresh_inputs_per_step: 1
            };
            count
        ];
        check_agreement(&cfg, &lanes, 1, &format!("{count} tiny VNs, 2-wide root"));
    }
}

#[test]
fn mixed_regime_sweep_agrees() {
    // Sweep lane counts and input demands; trace and model must track
    // each other across the whole grid.
    let cfg = MaeriConfig::paper_64();
    for count in [1usize, 2, 4, 6] {
        for inputs in [1usize, 4, 9, 16] {
            let vn = (64 / count.max(1)).min(16);
            let lanes = vec![
                LaneSpec {
                    vn_size: vn,
                    fresh_inputs_per_step: inputs
                };
                count
            ];
            check_agreement(
                &cfg,
                &lanes,
                inputs / 2,
                &format!("{count} lanes x {inputs} words"),
            );
        }
    }
}

#[test]
fn stall_attribution_matches_the_binding_resource() {
    // Distribution-bound: distribution stalls dominate.
    let cfg = MaeriConfig::paper_64();
    let lanes = vec![LaneSpec {
        vn_size: 61,
        fresh_inputs_per_step: 44,
    }];
    let trace = simulate_conv_iteration(&cfg, &lanes, 200, 0).unwrap();
    assert!(trace.distribution_stall_cycles > trace.collection_stall_cycles);

    // Collection-bound: collection stalls dominate.
    let thin = MaeriConfig::builder(64)
        .distribution_bandwidth(64)
        .collection_bandwidth(1)
        .build()
        .unwrap();
    let lanes = vec![
        LaneSpec {
            vn_size: 4,
            fresh_inputs_per_step: 1
        };
        16
    ];
    let trace = simulate_conv_iteration(&thin, &lanes, 200, 1).unwrap();
    assert!(trace.collection_stall_cycles > trace.distribution_stall_cycles);
}
