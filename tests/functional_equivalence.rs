//! Property-based functional equivalence: layers executed through the
//! fabric (multiplier switches + ART interpreter) must compute the same
//! values as the plain software reference, over randomized shapes and
//! tensors.

use maeri_repro::dnn::{reference, ConvLayer, FcLayer, PoolLayer, Tensor};
use maeri_repro::fabric::{functional, MaeriConfig};
use maeri_repro::sim::SimRng;
use proptest::prelude::*;

fn cfg() -> MaeriConfig {
    MaeriConfig::paper_64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_fabric_equals_reference(
        in_c in 1usize..=6,
        hw in 4usize..=9,
        out_c in 1usize..=5,
        k in 1usize..=3,
        stride in 1usize..=2,
        pad in 0usize..=1,
        seed in 0u64..10_000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let layer = ConvLayer::new("prop_conv", in_c, hw, hw, out_c, k, k, stride, pad);
        let mut rng = SimRng::seed(seed);
        let input = Tensor::random(&[in_c, hw, hw], &mut rng);
        let weights = Tensor::random(&[out_c, in_c, k, k], &mut rng);
        let fabric = functional::run_conv(&cfg(), &layer, &input, &weights)
            .expect("small conv is mappable");
        let expected = reference::conv2d(&layer, &input, &weights);
        prop_assert!(
            fabric.max_abs_diff(&expected) < 1e-3,
            "max diff {}", fabric.max_abs_diff(&expected)
        );
    }

    #[test]
    fn pool_fabric_equals_reference(
        channels in 1usize..=4,
        hw in 4usize..=10,
        window in 2usize..=3,
        stride in 1usize..=3,
        seed in 0u64..10_000,
    ) {
        prop_assume!(window <= hw);
        let layer = PoolLayer::new("prop_pool", channels, hw, hw, window, stride);
        let mut rng = SimRng::seed(seed);
        let input = Tensor::random(&[channels, hw, hw], &mut rng);
        let fabric = functional::run_pool(&cfg(), &layer, &input).expect("mappable");
        let expected = reference::max_pool(&layer, &input);
        prop_assert!(fabric.max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn fc_fabric_equals_reference(
        inputs in 1usize..=150,
        outputs in 1usize..=10,
        seed in 0u64..10_000,
    ) {
        let layer = FcLayer::new("prop_fc", inputs, outputs);
        let mut rng = SimRng::seed(seed);
        let x: Vec<f32> = (0..inputs).map(|_| rng.next_f32()).collect();
        let weights = Tensor::random(&[outputs, inputs], &mut rng);
        let fabric = functional::run_fc(&cfg(), &layer, &x, &weights).expect("mappable");
        let expected = reference::fully_connected(&layer, &x, &weights);
        for (a, b) in fabric.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// The fabric result is independent of the array size: 64 and 256
    /// multiplier switches compute the same convolution.
    #[test]
    fn conv_result_independent_of_array_size(
        seed in 0u64..10_000,
    ) {
        let layer = ConvLayer::new("size_check", 4, 6, 6, 3, 3, 3, 1, 1);
        let mut rng = SimRng::seed(seed);
        let input = Tensor::random(&[4, 6, 6], &mut rng);
        let weights = Tensor::random(&[3, 4, 3, 3], &mut rng);
        let small = functional::run_conv(&cfg(), &layer, &input, &weights).unwrap();
        let big_cfg = MaeriConfig::builder(256).build().unwrap();
        let big = functional::run_conv(&big_cfg, &layer, &input, &weights).unwrap();
        prop_assert!(small.max_abs_diff(&big) < 1e-3);
    }
}
