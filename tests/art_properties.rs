//! Property-based tests of the Augmented Reduction Tree's two formal
//! properties (Section 3.2.2):
//!
//! * **Property 1 (Configurability):** an ART with N leaves can map any
//!   adder tree over k consecutive leaves, k <= N.
//! * **Property 2 (Non-Blocking):** multiple such adder trees map
//!   simultaneously without sharing links when their leaf sets are
//!   disjoint.

use maeri_repro::fabric::art::{pack_vns, ArtConfig, VnRange};
use maeri_repro::noc::{BinaryTree, ChubbyTree};
use proptest::prelude::*;

fn chubby(leaves: usize, bw: usize) -> ChubbyTree {
    ChubbyTree::new(BinaryTree::with_leaves(leaves).unwrap(), bw).unwrap()
}

proptest! {
    /// Property 1: every contiguous range reduces to the exact sum.
    #[test]
    fn any_contiguous_vn_reduces_correctly(
        log_leaves in 2usize..=8,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let leaves = 1usize << log_leaves;
        let start = ((leaves - 1) as f64 * start_frac) as usize;
        let max_len = leaves - start;
        let len = (1.0 + (max_len - 1) as f64 * len_frac) as usize;
        let range = VnRange::new(start, len);

        let config = ArtConfig::build(chubby(leaves, (leaves / 2).clamp(2, 16)), &[range])
            .expect("single contiguous VN always maps (Property 1)");

        let mut rng = maeri_repro::sim::SimRng::seed(seed);
        let values: Vec<f32> = (0..leaves).map(|_| rng.next_f32()).collect();
        let sums = config.reduce(&values);
        prop_assert_eq!(sums.len(), 1);
        let expected: f32 = values[start..start + len].iter().sum();
        prop_assert!(
            (sums[0] - expected).abs() <= 1e-3 * (1.0 + expected.abs()),
            "got {} want {}", sums[0], expected
        );
    }

    /// Property 2: disjoint VN packings all reduce correctly and claim
    /// each forwarding link at most once.
    #[test]
    fn disjoint_vns_are_non_blocking(
        log_leaves in 3usize..=7,
        sizes in prop::collection::vec(1usize..=20, 1..20),
        seed in 0u64..1000,
    ) {
        let leaves = 1usize << log_leaves;
        let (ranges, _) = pack_vns(leaves, &sizes);
        prop_assume!(!ranges.is_empty());

        let config = ArtConfig::build(chubby(leaves, (leaves / 4).max(2)), &ranges)
            .expect("disjoint contiguous VNs always map (Property 2)");

        // Functional correctness of every VN at once.
        let mut rng = maeri_repro::sim::SimRng::seed(seed);
        let values: Vec<f32> = (0..leaves).map(|_| rng.next_f32()).collect();
        let sums = config.reduce(&values);
        for (range, sum) in ranges.iter().zip(&sums) {
            let expected: f32 = values[range.start..range.end()].iter().sum();
            prop_assert!(
                (sum - expected).abs() <= 1e-3 * (1.0 + expected.abs()),
                "vn {:?}: got {} want {}", range, sum, expected
            );
        }

        // No forwarding link claimed twice, in any direction.
        let mut seen = std::collections::BTreeSet::new();
        for fl in config.forwarding_links() {
            let key = (fl.from.min(fl.to), fl.from.max(fl.to));
            prop_assert!(seen.insert(key), "link {key:?} claimed twice");
        }
    }

    /// Max-reduction (POOL comparator mode) is as correct as addition.
    #[test]
    fn pool_mode_reduces_to_maximum(
        sizes in prop::collection::vec(1usize..=16, 1..8),
        seed in 0u64..1000,
    ) {
        let leaves = 64;
        let (ranges, _) = pack_vns(leaves, &sizes);
        prop_assume!(!ranges.is_empty());
        let config = ArtConfig::build(chubby(leaves, 8), &ranges).expect("mappable");
        let mut rng = maeri_repro::sim::SimRng::seed(seed);
        let values: Vec<f32> = (0..leaves).map(|_| rng.next_f32()).collect();
        let maxes = config.reduce_max(&values);
        for (range, max) in ranges.iter().zip(&maxes) {
            let expected = values[range.start..range.end()]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            // Exact comparison is intended: max-reduction returns one
            // of the inputs verbatim, bit for bit.
            prop_assert_eq!(max.to_bits(), expected.to_bits());
        }
    }

    /// Chubby-link claim of Figure 6(c): when the VNs span the whole
    /// array and the root is wide enough for their outputs, collection
    /// is fully non-blocking (slowdown 1.0). Smaller VNs crammed under
    /// one subtree legitimately funnel — that is the 0.25x-bandwidth
    /// effect of Figure 13 — but the slowdown can never exceed the
    /// output count.
    #[test]
    fn chubby_root_collection_bounds(
        vn_size in 1usize..=16,
    ) {
        let leaves = 64;
        let count = leaves / vn_size;
        let (ranges, _) = pack_vns(leaves, &vec![vn_size; count]);
        let config = ArtConfig::build(chubby(leaves, 16), &ranges).expect("mappable");
        let slowdown = config.throughput_slowdown();
        prop_assert!(slowdown <= count as f64 + 1e-9,
            "slowdown {} exceeds {} outputs", slowdown, count);
        if vn_size >= 4 && count <= 16 {
            // Full-array spread with <= root-bandwidth outputs: fully
            // non-blocking.
            prop_assert!((slowdown - 1.0).abs() < 1e-9,
                "slowdown {} for {} spread VNs of {}", slowdown, count, vn_size);
        }
    }
}
