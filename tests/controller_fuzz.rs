//! Fuzzing the network controller with generated workloads: every
//! random-but-valid model must compile to a schedule and execute with
//! causally consistent statistics, dense and sparse, across fabric
//! sizes.

use maeri_repro::dnn::zoo;
use maeri_repro::fabric::controller::Controller;
use maeri_repro::fabric::MaeriConfig;
use maeri_repro::sim::SimRng;

#[test]
fn random_models_always_compile_and_run() {
    let controller = Controller::new(MaeriConfig::paper_64(), 80);
    for seed in 0..60u64 {
        let model = zoo::random_model(&mut SimRng::seed(seed), 1 + (seed as usize % 7));
        let run = controller
            .run_model(&model)
            .unwrap_or_else(|err| panic!("seed {seed}: {err}"));
        assert_eq!(run.layers.len(), model.layers().len(), "seed {seed}");
        assert_eq!(run.total_macs(), model.total_work(), "seed {seed}");
        let util = run.utilization();
        assert!(
            util > 0.0 && util <= 1.0 + 1e-9,
            "seed {seed}: utilization {util}"
        );
        for (cmd, layer) in run.schedule.iter().zip(model.layers()) {
            assert_eq!(cmd.layer, layer.name(), "seed {seed}");
            assert!(
                cmd.vn_size >= 1 && cmd.vn_size <= 64,
                "seed {seed}: {cmd:?}"
            );
        }
    }
}

#[test]
fn random_models_run_sparse_too() {
    let controller = Controller::new(MaeriConfig::paper_64(), 80);
    for seed in 0..20u64 {
        let model = zoo::random_model(&mut SimRng::seed(seed + 1000), 3);
        let dense = controller.run_model(&model).expect("dense runs");
        let sparse = controller
            .run_model_sparse(&model, 0.5, seed)
            .expect("sparse runs");
        assert!(
            sparse.total_macs() <= dense.total_macs(),
            "seed {seed}: sparsity increased work"
        );
    }
}

#[test]
fn random_models_scale_across_fabrics() {
    // The same model runs on 16-...-256-switch fabrics; bigger fabrics
    // never do less work and utilization stays causal.
    for seed in [3u64, 17, 29] {
        let model = zoo::random_model(&mut SimRng::seed(seed), 4);
        let mut prev_cycles = u64::MAX;
        for switches in [16usize, 64, 256] {
            let bw = (switches / 8).max(2);
            let cfg = MaeriConfig::builder(switches)
                .distribution_bandwidth(bw)
                .collection_bandwidth(bw)
                .build()
                .expect("valid fabric");
            let run = Controller::new(cfg, 80).run_model(&model).expect("runs");
            assert_eq!(run.total_macs(), model.total_work());
            assert!(run.utilization() <= 1.0 + 1e-9);
            // Larger fabrics at matched per-switch bandwidth are
            // monotonically not-slower, modulo startup noise.
            assert!(
                run.total_cycles() <= prev_cycles.saturating_add(4096),
                "seed {seed}: {switches} switches slower ({} > {prev_cycles})",
                run.total_cycles()
            );
            prev_cycles = run.total_cycles();
        }
    }
}
