//! Whole-network integration tests: every layer kind of every Table 1
//! model maps onto MAERI and yields causally consistent statistics.

use maeri_repro::dnn::layer::Layer;
use maeri_repro::dnn::zoo;
use maeri_repro::fabric::engine::RunStats;
use maeri_repro::fabric::{ConvMapper, FcMapper, LstmMapper, MaeriConfig, PoolMapper, VnPolicy};

fn run_layer(cfg: MaeriConfig, layer: &Layer) -> RunStats {
    match layer {
        Layer::Conv(conv) => ConvMapper::new(cfg)
            .run(conv, VnPolicy::Auto)
            .expect("conv maps"),
        Layer::Fc(fc) => FcMapper::new(cfg).run(fc).expect("fc maps"),
        Layer::Pool(pool) => PoolMapper::new(cfg).run(pool).expect("pool maps"),
        Layer::Lstm(lstm) => LstmMapper::new(cfg).run(lstm).expect("lstm maps"),
        other => unreachable!("unhandled layer kind {}", other.kind()),
    }
}

#[test]
fn every_table1_model_runs_end_to_end() {
    let cfg = MaeriConfig::paper_64();
    for model in zoo::all_models() {
        let mut total = RunStats::new(model.name(), 64, maeri_repro::sim::Cycle::ZERO, 0);
        for layer in model.layers() {
            let run = run_layer(cfg, layer);
            // Causal consistency: utilization in (0, 1], work preserved.
            assert!(run.cycles.as_u64() > 0, "{} took 0 cycles", layer.name());
            assert_eq!(run.macs, layer.work(), "{} lost work", layer.name());
            let util = run.utilization();
            assert!(
                util > 0.0 && util <= 1.0 + 1e-9,
                "{}: utilization {util}",
                layer.name()
            );
            total.absorb(&run);
        }
        assert_eq!(total.macs, model.total_work(), "{}", model.name());
        assert!(
            total.sram_reads > 0 && total.sram_writes > 0,
            "{} moved no data",
            model.name()
        );
    }
}

#[test]
fn convnets_sustain_high_utilization() {
    // End-to-end CONV utilization of the 3x3-dominated networks.
    let cfg = MaeriConfig::paper_64();
    for model in [zoo::vgg16(), zoo::resnet50()] {
        let mut cycles = 0u64;
        let mut macs = 0u64;
        for conv in model.conv_layers() {
            let run = ConvMapper::new(cfg).run(conv, VnPolicy::Auto).unwrap();
            cycles += run.cycles.as_u64();
            macs += run.macs;
        }
        let util = macs as f64 / (64.0 * cycles as f64);
        assert!(
            util > 0.75,
            "{}: end-to-end conv utilization {util}",
            model.name()
        );
    }
}

#[test]
fn bigger_fabric_is_faster_on_big_layers() {
    let layer = zoo::vgg16_c8();
    let small = ConvMapper::new(MaeriConfig::paper_64())
        .run(&layer, VnPolicy::Auto)
        .unwrap();
    let big_cfg = MaeriConfig::builder(256)
        .distribution_bandwidth(32)
        .collection_bandwidth(32)
        .build()
        .unwrap();
    let big = ConvMapper::new(big_cfg)
        .run(&layer, VnPolicy::Auto)
        .unwrap();
    assert!(
        big.cycles.as_u64() * 2 < small.cycles.as_u64(),
        "256 switches should be >2x faster: {} vs {}",
        big.cycles.as_u64(),
        small.cycles.as_u64()
    );
}

#[test]
fn sram_traffic_accounts_weights_at_least_once() {
    let cfg = MaeriConfig::paper_64();
    for model in [zoo::alexnet(), zoo::vgg16()] {
        for conv in model.conv_layers() {
            let run = ConvMapper::new(cfg).run(conv, VnPolicy::Auto).unwrap();
            assert!(
                run.sram_reads >= conv.weight_count() as u64,
                "{}: fewer reads than weights",
                conv.name
            );
            assert_eq!(run.sram_writes, conv.output_count() as u64);
        }
    }
}
